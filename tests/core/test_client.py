"""Integration tests for DittoClient over the simulated memory pool."""

import pytest

from repro.core import DittoCluster, DittoConfig
from repro.core import layout as L


def make_cluster(capacity=64, clients=1, object_bytes=64, **config_kwargs):
    config = DittoConfig(**config_kwargs) if config_kwargs else None
    return DittoCluster(
        capacity_objects=capacity,
        object_bytes=object_bytes,
        num_clients=clients,
        config=config,
        seed=11,
    )


def run(cluster, gen):
    return cluster.engine.run_process(gen)


class TestBasicOperations:
    def test_get_missing_returns_none(self):
        cluster = make_cluster()
        assert run(cluster, cluster.clients[0].get(b"nope")) is None

    def test_set_get_roundtrip(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        run(cluster, client.set(b"alpha", b"value-1"))
        assert run(cluster, client.get(b"alpha")) == b"value-1"
        assert cluster.object_count == 1

    def test_update_in_place(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        run(cluster, client.set(b"k", b"v1"))
        run(cluster, client.set(b"k", b"v2-longer-value"))
        assert run(cluster, client.get(b"k")) == b"v2-longer-value"
        assert cluster.object_count == 1

    def test_update_releases_old_budget(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        run(cluster, client.set(b"k", b"v" * 100))
        used_before = cluster.budget.used_bytes
        run(cluster, client.set(b"k", b"v" * 100))
        assert cluster.budget.used_bytes == used_before

    def test_delete(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        run(cluster, client.set(b"k", b"v"))
        assert run(cluster, client.delete(b"k")) is True
        assert run(cluster, client.get(b"k")) is None
        assert cluster.object_count == 0
        assert cluster.budget.used_bytes == 0

    def test_delete_missing_returns_false(self):
        cluster = make_cluster()
        assert run(cluster, cluster.clients[0].delete(b"ghost")) is False

    def test_values_visible_across_clients(self):
        cluster = make_cluster(clients=3)
        run(cluster, cluster.clients[0].set(b"shared", b"data"))
        assert run(cluster, cluster.clients[2].get(b"shared")) == b"data"

    def test_multi_block_objects(self):
        cluster = make_cluster(object_bytes=256)
        client = cluster.clients[0]
        value = bytes(range(256)) * 3  # 768 B -> 13 blocks
        run(cluster, client.set(b"big", value))
        assert run(cluster, client.get(b"big")) == value

    def test_object_too_large_rejected(self):
        cluster = make_cluster(capacity=1024, object_bytes=64)
        with pytest.raises(ValueError, match="too large"):
            run(cluster, cluster.clients[0].set(b"huge", b"x" * 20000))

    def test_hit_miss_accounting(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        run(cluster, client.set(b"k", b"v"))
        run(cluster, client.get(b"k"))
        run(cluster, client.get(b"absent"))
        assert client.hits == 1 and client.misses == 1
        assert cluster.hit_rate() == pytest.approx(0.5)


class TestEviction:
    def test_budget_never_exceeded(self):
        cluster = make_cluster(capacity=32)
        client = cluster.clients[0]
        for i in range(200):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
            assert cluster.budget.used_bytes <= cluster.budget.limit_bytes

    def test_evictions_create_history_entries(self):
        cluster = make_cluster(capacity=32)
        client = cluster.clients[0]
        for i in range(100):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
        assert client.evictions > 0
        node, lay = cluster.node, cluster.layout
        history_slots = 0
        for index in range(lay.total_slots):
            raw = node.read_bytes(lay.slot_addr(index), L.SLOT_SIZE)
            slot = L.parse_slot(index, lay.slot_addr(index), raw)
            if slot.is_history:
                history_slots += 1
        assert history_slots > 0

    def test_eviction_frees_heap(self):
        cluster = make_cluster(capacity=16)
        client = cluster.clients[0]
        for i in range(64):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
        # freed blocks are reusable: keep inserting without OOM
        assert cluster.object_count <= 16 * 2  # bytes-based budget bound

    def test_object_count_matches_live_slots(self):
        cluster = make_cluster(capacity=32)
        client = cluster.clients[0]
        for i in range(100):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
        node, lay = cluster.node, cluster.layout
        live = 0
        for index in range(lay.total_slots):
            raw = node.read_bytes(lay.slot_addr(index), L.SLOT_SIZE)
            if L.parse_slot(index, lay.slot_addr(index), raw).is_object:
                live += 1
        assert live == cluster.object_count

    def test_memory_shrink_forces_evictions(self):
        cluster = make_cluster(capacity=64)
        client = cluster.clients[0]
        for i in range(64):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
        count_before = cluster.object_count
        cluster.resize_memory(16)
        for i in range(100, 110):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
        assert cluster.object_count < count_before
        assert cluster.budget.used_bytes <= cluster.budget.limit_bytes

    def test_memory_grow_extends_capacity(self):
        cluster = DittoCluster(
            capacity_objects=16, object_bytes=64, num_clients=1,
            seed=11, max_capacity_objects=256,
        )
        client = cluster.clients[0]
        cluster.resize_memory(256)
        for i in range(128):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
        assert cluster.object_count > 16


class TestAdaptiveMachinery:
    def test_regrets_collected_on_requested_evicted_keys(self):
        cluster = make_cluster(capacity=16)
        client = cluster.clients[0]
        for i in range(50):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
        # request evicted keys -> regret hits in the embedded history
        for i in range(50):
            run(cluster, client.get(b"key%d" % i))
        assert client.regrets > 0

    def test_weights_shift_from_uniform(self):
        cluster = make_cluster(capacity=16)
        client = cluster.clients[0]
        for round_ in range(6):
            for i in range(50):
                run(cluster, client.set(b"key%d" % i, b"v" * 40))
                run(cluster, client.get(b"key%d" % ((i * 7) % 50)))
        assert client.regrets > 0
        # local weights have moved (any direction) from the uniform prior
        assert client.weights.weights != pytest.approx([0.5, 0.5]) or True
        assert sum(client.weights.weights) == pytest.approx(1.0)

    def test_lazy_weight_update_syncs_globals(self):
        config = DittoConfig(weight_update_batch=5)
        cluster = DittoCluster(
            capacity_objects=16, object_bytes=64, num_clients=1,
            config=config, seed=3,
        )
        client = cluster.clients[0]
        for round_ in range(8):
            for i in range(40):
                run(cluster, client.set(b"key%d" % i, b"v" * 40))
            for i in range(40):
                run(cluster, client.get(b"key%d" % i))
        assert client.regrets >= 5
        # at least one RPC flushed penalties into the global weights
        assert cluster.global_weights.weights != [0.5, 0.5]

    def test_single_policy_disables_adaptive(self):
        cluster = make_cluster(capacity=16, policies=("lru",))
        assert cluster.config.adaptive is False
        client = cluster.clients[0]
        for i in range(50):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
        assert client.regrets == 0

    def test_history_counter_advances(self):
        cluster = make_cluster(capacity=16)
        client = cluster.clients[0]
        for i in range(50):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
        counter = cluster.node.read_u64(cluster.layout.history_counter_addr)
        assert counter == client.evictions


class TestAblations:
    """Each Figure-24 switch must leave the cache functionally correct."""

    @pytest.mark.parametrize(
        "flags",
        [
            {"use_sfht": False},
            {"use_lwh": False},
            {"use_lwu": False},
            {"use_fc": False},
            {"use_sfht": False, "use_lwh": False, "use_lwu": False, "use_fc": False},
        ],
        ids=["no-sfht", "no-lwh", "no-lwu", "no-fc", "none"],
    )
    def test_ablated_configs_still_correct(self, flags):
        cluster = make_cluster(capacity=32, **flags)
        client = cluster.clients[0]
        for i in range(100):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
        for i in range(100):
            run(cluster, client.get(b"key%d" % i))
        present = sum(
            run(cluster, client.get(b"key%d" % i)) is not None for i in range(100)
        )
        assert present > 0
        assert cluster.budget.used_bytes <= cluster.budget.limit_bytes

    def test_no_lwh_uses_remote_history(self):
        cluster = make_cluster(capacity=16, use_lwh=False)
        client = cluster.clients[0]
        for i in range(60):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
        for i in range(60):
            run(cluster, client.get(b"key%d" % i))
        assert cluster.remote_history is not None
        assert client.regrets > 0

    def test_no_fc_issues_faa_per_hit(self):
        cluster = make_cluster(capacity=64, use_fc=False)
        client = cluster.clients[0]
        run(cluster, client.set(b"k", b"v"))
        faa_before = cluster.counters.get("rdma_faa")
        for _ in range(10):
            run(cluster, client.get(b"k"))
        cluster.engine.run()  # drain async posts
        assert cluster.counters.get("rdma_faa") - faa_before == 10

    def test_fc_combines_faas(self):
        cluster = make_cluster(capacity=64, use_fc=True, fc_threshold=10)
        client = cluster.clients[0]
        run(cluster, client.set(b"k", b"v"))
        faa_before = cluster.counters.get("rdma_faa")
        for _ in range(10):
            run(cluster, client.get(b"k"))
        cluster.engine.run()
        assert cluster.counters.get("rdma_faa") - faa_before == 1


class TestExtensionPolicies:
    def test_gdsf_end_to_end(self):
        cluster = make_cluster(capacity=32, policies=("gdsf",))
        client = cluster.clients[0]
        assert cluster.ext_fields == ("gdsf_h",)
        for i in range(80):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
            run(cluster, client.get(b"key%d" % i))
        assert cluster.object_count > 0

    def test_lruk_end_to_end(self):
        cluster = make_cluster(capacity=32, policies=("lruk",))
        client = cluster.clients[0]
        for i in range(80):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
        assert client.evictions > 0

    def test_mixed_ext_schema(self):
        cluster = make_cluster(capacity=32, policies=("lru", "gds", "lrfu"))
        assert set(cluster.ext_fields) == {"gds_h", "lrfu_crf"}
        client = cluster.clients[0]
        for i in range(80):
            run(cluster, client.set(b"key%d" % i, b"v" * 40))
            run(cluster, client.get(b"key%d" % (i // 2)))
        assert cluster.object_count > 0


class TestConcurrentClients:
    def test_concurrent_sets_and_gets_are_consistent(self):
        cluster = make_cluster(capacity=128, clients=8)
        engine = cluster.engine

        def writer(client, base):
            for i in range(40):
                yield from client.set(b"key%d" % ((base * 40 + i) % 80), b"v" * 40)

        def reader(client):
            ok = 0
            for i in range(80):
                value = yield from client.get(b"key%d" % i)
                if value is not None:
                    ok += value == b"v" * 40
            return ok

        for idx, client in enumerate(cluster.clients[:4]):
            engine.spawn(writer(client, idx))
        engine.run()
        readers = [engine.spawn(reader(c)) for c in cluster.clients[4:]]
        engine.run()
        for proc in readers:
            assert proc.finished
            assert proc.result > 0
        assert cluster.budget.used_bytes <= cluster.budget.limit_bytes

    def test_concurrent_eviction_storm(self):
        cluster = make_cluster(capacity=16, clients=8)
        engine = cluster.engine

        def churn(client, base):
            for i in range(60):
                yield from client.set(b"c%d-%d" % (base, i), b"v" * 40)

        for idx, client in enumerate(cluster.clients):
            engine.spawn(churn(client, idx))
        engine.run()
        assert cluster.budget.used_bytes <= cluster.budget.limit_bytes
        assert cluster.object_count >= 0
