"""Focused tests for DittoClient internals and statistics plumbing."""

import pytest

from repro.core import DittoCache, DittoCluster, DittoConfig
from repro.core import layout as L
from repro.core.client import COUNTER_REFRESH_PERIOD, decode_ext, encode_ext


class TestExtCodec:
    def test_roundtrip(self):
        fields = ("a", "b")
        raw = encode_ext(fields, {"a": 1.5, "b": -2.0})
        assert decode_ext(fields, raw) == {"a": 1.5, "b": -2.0}

    def test_missing_fields_default_zero(self):
        raw = encode_ext(("a", "b"), {"a": 3.0})
        assert decode_ext(("a", "b"), raw) == {"a": 3.0, "b": 0.0}

    def test_infinity_survives(self):
        raw = encode_ext(("irr",), {"irr": float("inf")})
        assert decode_ext(("irr",), raw)["irr"] == float("inf")


class TestCounterCache:
    def test_counter_refreshed_on_eviction(self):
        cluster = DittoCluster(
            capacity_objects=16, object_bytes=64, num_clients=1, seed=4
        )
        client = cluster.clients[0]
        run = cluster.engine.run_process
        for i in range(40):
            run(client.set(b"k%d" % i, b"v" * 40))
        assert client._counter_fresh
        # Forced in-bucket evictions skip the history counter.
        history_evictions = client.evictions - client.forced_bucket_evictions
        assert client._counter_cache == history_evictions

    def test_counter_read_periodically_on_misses(self):
        cluster = DittoCluster(
            capacity_objects=64, object_bytes=64, num_clients=1, seed=4
        )
        client = cluster.clients[0]
        run = cluster.engine.run_process
        for i in range(COUNTER_REFRESH_PERIOD + 2):
            run(client.get(b"missing%d" % i))
        # at least the initial refresh read happened
        assert client._counter_fresh


class TestVerbCounts:
    def test_get_hit_is_two_reads(self):
        cluster = DittoCluster(
            capacity_objects=64, object_bytes=64, num_clients=1, seed=4
        )
        client = cluster.clients[0]
        run = cluster.engine.run_process
        run(client.set(b"k", b"v"))
        reads_before = cluster.counters.get("rdma_read")
        run(client.get(b"k"))
        assert cluster.counters.get("rdma_read") - reads_before == 2

    def test_insert_is_read_write_cas(self):
        cluster = DittoCluster(
            capacity_objects=64, object_bytes=64, num_clients=1, seed=4
        )
        client = cluster.clients[0]
        run = cluster.engine.run_process
        # Warm the allocator so the segment RPC is off this measurement, and
        # drain the warm Set's async metadata post.
        run(client.set(b"warm", b"v"))
        cluster.engine.run()
        before = {
            verb: cluster.counters.get(f"rdma_{verb}")
            for verb in ("read", "write", "cas")
        }
        run(client.set(b"k", b"v"))
        cluster.engine.run()  # drain async metadata posts
        delta = {
            verb: cluster.counters.get(f"rdma_{verb}") - before[verb]
            for verb in ("read", "write", "cas")
        }
        # Paper's Set: bucket READ, object WRITE, slot CAS (+1 async
        # metadata WRITE).
        assert delta["read"] == 1
        assert delta["cas"] == 1
        assert delta["write"] == 2

    def test_eviction_sampling_is_one_read_with_sfht(self):
        cluster = DittoCluster(
            capacity_objects=8, object_bytes=64, num_clients=1, seed=4
        )
        client = cluster.clients[0]
        run = cluster.engine.run_process
        # Fill the byte budget completely (each object is one 64 B block,
        # the budget is sized at two blocks per configured object).
        for i in range(16):
            run(client.set(b"k%d" % i, b"v" * 40))
        # Next insert must evict: count FAA on the history counter.
        faa_before = cluster.counters.get("rdma_faa")
        run(client.set(b"overflow", b"v" * 40))
        cluster.engine.run()
        assert client.evictions >= 1
        assert cluster.counters.get("rdma_faa") >= faa_before + 1


class TestStats:
    def test_stats_keys(self):
        cache = DittoCache(capacity_objects=32, seed=1)
        cache.set("a", "1")
        cache.get("a")
        stats = cache.stats()
        for key in (
            "hits", "misses", "hit_rate", "objects", "evictions",
            "regrets", "used_bytes", "limit_bytes", "sim_time_us",
        ):
            assert key in stats

    def test_multi_mn_via_facade(self):
        cache = DittoCache(capacity_objects=64, num_memory_nodes=2, seed=1)
        cache.set("k", "v")
        assert cache.get("k") == b"v"
        assert len(cache.cluster.nodes) == 2

    def test_selection_mode_via_facade(self):
        cache = DittoCache(capacity_objects=64, selection="greedy", seed=1)
        assert cache.cluster.config.selection == "greedy"
        for i in range(200):
            cache.set(f"k{i}", "v")
        assert len(cache) > 0
