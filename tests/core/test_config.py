"""Tests for DittoConfig validation and derived settings."""

import pytest

from repro import DittoConfig


def test_defaults_match_paper():
    config = DittoConfig()
    assert config.policies == ("lru", "lfu")
    assert config.sample_size == 5  # Redis default
    assert config.fc_threshold == 10
    assert config.fc_capacity_bytes == 10 * 1024 * 1024
    assert config.learning_rate == pytest.approx(0.1)
    assert config.weight_update_batch == 100


def test_single_policy_disables_adaptive():
    config = DittoConfig(policies=("lru",))
    assert config.adaptive is False


def test_disabling_fc_forces_threshold_one():
    config = DittoConfig(use_fc=False)
    assert config.fc_threshold == 1


def test_rejects_empty_policies():
    with pytest.raises(ValueError):
        DittoConfig(policies=())


def test_rejects_bad_sample_size():
    with pytest.raises(ValueError):
        DittoConfig(sample_size=0)


def test_num_experts():
    assert DittoConfig(policies=("lru", "lfu", "fifo")).num_experts == 3
