"""Unit tests for the replicated controller metadata (repro.core.consensus)."""

import pytest

from repro.core.consensus import (
    LEADER,
    ConsensusUnavailable,
    ControllerGroup,
    MetadataState,
    RaftParams,
)
from repro.core.elasticity import ACTIVE, DRAINING, MembershipTable
from repro.memory.controller import OutOfMemoryError, SegmentState
from repro.rdma.verbs import StaleEpoch
from repro.sim import Engine
from repro.sim.faults import ControllerCrash, FaultInjector, FaultPlan, Partition

MB = 1 << 20


def build_group(n_replicas=3, seed=7, faults=None, nodes=2, params=None):
    engine = Engine()
    membership = MembershipTable(range(nodes))
    physical = MetadataState(membership)
    for nid in range(nodes):
        physical.adopt_node(SegmentState(nid, nid * MB, (nid + 1) * MB))
    group = ControllerGroup(
        engine, physical, n_replicas, seed, params=params, faults=faults
    )
    return engine, group, physical


def submit(engine, client, command):
    return engine.run_process(client.submit(command))


def test_elects_exactly_one_leader():
    engine, group, _ = build_group()
    engine.run(until=5_000)
    leaders = [r for r in group.replicas if r.role == LEADER]
    assert len(leaders) == 1
    assert group.leader_id() == leaders[0].id
    # The timeline recorded the election and the win, in that order.
    kinds = [kind for _, kind, _, _ in group.events]
    assert kinds[0] == "election" and "leader" in kinds


def test_commands_replicate_to_every_replica():
    engine, group, physical = build_group()
    client = group.make_client()
    addr = submit(engine, client, ("alloc_segment", 0, 4096, 42))
    assert addr == physical.nodes[0].grants[42][0][0]
    epoch = submit(engine, client, ("membership_set", 1, DRAINING))
    assert physical.membership.state(1) == DRAINING
    assert physical.membership.epoch == epoch
    engine.run()  # quiesce: every replica catches up before parking
    for replica in group.replicas:
        assert replica.commit == len(replica.log)
        assert replica.state.nodes[0].grants[42] == [(addr, 4096)]
        assert replica.state.membership.state(1) == DRAINING


def test_marker_errors_reraise_locally():
    engine, group, _ = build_group()
    client = group.make_client()
    submit(engine, client, ("membership_set", 1, DRAINING))
    with pytest.raises(StaleEpoch):
        submit(engine, client, ("alloc_segment", 1, 4096, 1))
    with pytest.raises(OutOfMemoryError):
        submit(engine, client, ("alloc_segment", 0, 4 * MB, 1))


def test_session_dedup_answers_without_reapplying():
    state = MetadataState(MembershipTable([0]))
    state.adopt_node(SegmentState(0, 0, MB))
    first = state.apply_entry(5, 1, ("alloc_segment", 0, 4096, 9))
    again = state.apply_entry(5, 1, ("alloc_segment", 0, 4096, 9))
    assert first == again
    assert state.nodes[0].grants[9] == [(first, 4096)]  # applied once
    # A later seq from the same session applies normally.
    second = state.apply_entry(5, 2, ("alloc_segment", 0, 4096, 9))
    assert second != first


def test_clone_isolates_replica_state():
    state = MetadataState(MembershipTable([0]))
    state.adopt_node(SegmentState(0, 0, MB))
    copy = state.clone()
    copy.apply_entry(1, 1, ("alloc_segment", 0, 4096, 9))
    copy.membership.set_state(0, DRAINING)
    assert state.nodes[0].grants == {}
    assert state.membership.state(0) == ACTIVE


def test_followers_redirect_to_the_leader():
    engine, group, _ = build_group()
    engine.run(until=5_000)
    leader = group.leader_id()
    client = group.make_client()
    # Force the first probe at a follower: the redirect must still land the
    # command on the leader within one submission.
    client.leader_hint = None
    client._probe = (leader + 1) % group.n
    submit(engine, client, ("alloc_segment", 0, 4096, 1))
    assert client.leader_hint == leader


def test_leader_crash_fails_over_and_dedup_survives_retries():
    engine = Engine()
    injector = FaultInjector(engine)
    membership = MembershipTable([0])
    physical = MetadataState(membership)
    physical.adopt_node(SegmentState(0, 0, 4 * MB))
    group = ControllerGroup(engine, physical, 3, 7, faults=injector)
    engine.run(until=5_000)
    old = group.leader_id()
    injector.load(
        FaultPlan(controller_crashes=(ControllerCrash(old, 0.0, 8_000.0),)),
        offset_us=engine.now,
    )
    client = group.make_client()
    addr = engine.run_process(client.submit(("alloc_segment", 0, 4096, 3)))
    assert group.leader_id() != old
    # Exactly one grant despite any timed-out-and-retried submissions.
    assert physical.nodes[0].grants[3] == [(addr, 4096)]
    engine.run(until=engine.now + 20_000)  # crash window ends; replica rejoins
    engine.run()
    terms = {r.term for r in group.replicas}
    logs = {tuple(r.log) for r in group.replicas}
    assert len(terms) == 1 and len(logs) == 1


def test_partitioned_minority_cannot_commit():
    engine = Engine()
    injector = FaultInjector(engine)
    membership = MembershipTable([0])
    physical = MetadataState(membership)
    physical.adopt_node(SegmentState(0, 0, 4 * MB))
    params = RaftParams(max_submit_attempts=6)
    group = ControllerGroup(engine, physical, 3, 7, params=params,
                            faults=injector)
    engine.run(until=5_000)
    # Split every replica into its own singleton group: nobody can reach a
    # majority, so no command may commit, no matter which replica takes it.
    injector.load(
        FaultPlan(partitions=(
            Partition(0.0, 1e9, groups=((0,), (1,), (2,))),
        )),
        offset_us=engine.now,
    )
    client = group.make_client()
    with pytest.raises(ConsensusUnavailable):
        engine.run_process(client.submit(("alloc_segment", 0, 4096, 1)))
    assert physical.nodes[0].grants == {}


def test_majority_side_elects_and_serves_during_partition():
    engine = Engine()
    injector = FaultInjector(engine)
    physical = MetadataState(MembershipTable([0]))
    physical.adopt_node(SegmentState(0, 0, 4 * MB))
    group = ControllerGroup(engine, physical, 3, 7, faults=injector)
    engine.run(until=5_000)
    old = group.leader_id()
    others = tuple(i for i in range(3) if i != old)
    injector.load(
        FaultPlan(partitions=(Partition(0.0, 50_000.0, groups=((old,), others)),)),
        offset_us=engine.now,
    )
    client = group.make_client()
    addr = engine.run_process(client.submit(("alloc_segment", 0, 4096, 6)))
    assert group.leader_id() in others
    assert physical.nodes[0].grants[6] == [(addr, 4096)]
    engine.run(until=engine.now + 100_000)  # heal
    engine.run()
    assert len({tuple(r.log) for r in group.replicas}) == 1


def test_parking_lets_a_bare_run_drain():
    engine, group, _ = build_group()
    client = group.make_client()
    submit(engine, client, ("alloc_segment", 0, 4096, 1))
    engine.run()  # would spin forever if heartbeats never parked
    assert all(r.parked for r in group.replicas)
    # A later submission un-parks the group and still commits.
    result = submit(engine, client, ("list_segments", 0, 1))
    assert result == [(0, 4096)]
    engine.run()
    assert all(r.parked for r in group.replicas)


def test_single_replica_group_commits_immediately():
    engine, group, physical = build_group(n_replicas=1)
    client = group.make_client()
    addr = submit(engine, client, ("alloc_segment", 0, 4096, 2))
    assert physical.nodes[0].grants[2] == [(addr, 4096)]
    engine.run()


def test_timeline_is_deterministic_and_seed_sensitive():
    def timeline(seed):
        engine, group, _ = build_group(seed=seed)
        engine.run(until=20_000)
        client = group.make_client()
        submit(engine, client, ("alloc_segment", 0, 4096, 1))
        engine.run()
        return group.election_timeline(), list(group.commit_times)

    assert timeline(13) == timeline(13)
    assert timeline(13) != timeline(14)


def test_add_node_command_grows_every_replica():
    engine, group, physical = build_group(nodes=1)
    client = group.make_client()
    epoch = submit(engine, client, ("add_node", 1, 10 * MB, 12 * MB))
    assert physical.membership.state(1) == ACTIVE
    assert physical.membership.epoch == epoch
    engine.run()
    for replica in group.replicas:
        assert replica.state.nodes[1].next_free == 10 * MB
        assert replica.state.membership.state(1) == ACTIVE
