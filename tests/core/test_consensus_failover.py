"""Acceptance matrix: controller failover survives a live node drain.

The HA counterpart of ``test_elasticity_faults``: a 3-replica controller
group runs the cluster's metadata, a drain is started under YCSB-A traffic,
and at the exact entry into each drain phase the *current raft leader* is
taken out — by a :class:`ControllerCrash` window or by a :class:`Partition`
isolating it from the other replicas.  In every cell the group must elect a
successor, the drain must complete (or abort cleanly), and the
memory-accounting sweep must hold.
"""

import pytest

from repro.bench.runner import Feed, Harness, make_value, pack_key, preload
from repro.bench.systems import build_ditto
from repro.core import invariant_sweep
from repro.sim.faults import ControllerCrash, FaultPlan, Partition
from repro.workloads import make_ycsb

N_KEYS = 600
N_CLIENTS = 4
VALUE_SIZE = 232
SEED = 21
N_REPLICAS = 3

FAULTS = ("crash", "partition")
PHASES = ("copy", "handoff")

#: Leader outage length: several election timeouts, well inside the drain.
OUTAGE_US = 6_000.0


def _drain_under_leader_loss(fault: str, phase: str, seed: int = SEED):
    """Run a drain with traffic; kill/isolate the raft leader at ``phase``."""
    cluster = build_ditto(
        2 * N_KEYS, N_CLIENTS, seed=seed, num_memory_nodes=3,
        faults=FaultPlan(), controller_replicas=N_REPLICAS,
    )
    preload(cluster.engine, cluster.clients, range(N_KEYS), value_size=VALUE_SIZE)
    harness = Harness(
        cluster.engine, value_size=VALUE_SIZE, miss_penalty_us=200.0,
        tolerate_failures=True,
    )
    feeds = [
        Feed.from_requests(
            make_ycsb("A", n_keys=N_KEYS, seed=seed + i, client_id=i)
            .requests(30_000)
        )
        for i in range(N_CLIENTS)
    ]
    harness.launch_all(cluster.clients, feeds)
    harness.warm(15_000.0)

    deposed = []

    def on_phase(name):
        if name != phase:
            return
        leader = cluster.consensus.leader_id()
        assert leader is not None, "drain entered a phase with no leader"
        deposed.append(leader)
        if fault == "crash":
            plan = FaultPlan(
                controller_crashes=(ControllerCrash(leader, 0.0, OUTAGE_US),)
            )
        else:
            rest = tuple(i for i in range(N_REPLICAS) if i != leader)
            plan = FaultPlan(
                partitions=(Partition(0.0, OUTAGE_US, groups=((leader,), rest)),)
            )
        cluster.fault_injector.load(plan, offset_us=cluster.engine.now)

    proc = cluster.remove_memory_node(2, on_phase=on_phase)
    while not proc.finished and cluster.engine.now < 20_000_000.0:
        harness.measure(20_000.0)
    harness.stop_all()
    cluster.engine.run()  # drain drivers, elections, catch-up, parking

    survivor = next(c for c in cluster.clients if not c.dead)
    cluster.engine.run_process(survivor.repair_scan())
    cluster.engine.run(until=cluster.engine.now + 2_000.0)
    cluster.engine.run_process(survivor.repair_scan())
    cluster.engine.run()
    return cluster, harness, proc, deposed


@pytest.mark.parametrize("phase", PHASES)
@pytest.mark.parametrize("fault", FAULTS)
def test_drain_survives_leader_loss(fault, phase):
    cluster, harness, proc, deposed = _drain_under_leader_loss(fault, phase)
    assert proc.finished, "the drain wedged"
    record = cluster.migrations[-1]
    # The drain must end in a well-defined state; with this workload and
    # outage length it completes (an abort would also satisfy safety, but
    # regressing to aborts here would hide a liveness bug).
    assert record.phase == "done"
    assert record.migrated_objects > 0
    assert [n.node_id for n in cluster.nodes] == [0, 1]
    # Both membership flips went through the replicated log.
    assert record.epoch_start >= 1
    assert record.epoch_end > record.epoch_start

    # A successor was elected: the timeline shows a later term's leader.
    timeline = cluster.consensus.election_timeline()
    leaders = [(t, rid, term) for t, kind, rid, term in timeline
               if kind == "leader"]
    assert leaders[-1][2] > 1, "no re-election happened"
    assert deposed, "the fault hook never fired"

    # Replicas converged on one log and one term after the window.
    logs = {tuple(r.log) for r in cluster.consensus.replicas}
    assert len(logs) == 1
    assert len({r.term for r in cluster.consensus.replicas}) == 1

    # No block leaked or double-owned across failover + epoch changes.
    report = invariant_sweep(cluster)
    assert report["live_bytes"] == cluster.budget.used_bytes

    # Every key is correct or a clean miss.
    value = make_value(VALUE_SIZE)
    survivor = next(c for c in cluster.clients if not c.dead)
    run = cluster.engine.run_process
    hits = 0
    for key_id in range(N_KEYS):
        got = run(survivor.get(pack_key(key_id)))
        if got is not None:
            assert got == value
            hits += 1
    assert hits > 0


def test_failover_during_drain_is_deterministic():
    """Two seeded runs produce identical election timelines and outcomes."""
    def fingerprint():
        cluster, harness, _proc, deposed = _drain_under_leader_loss(
            "crash", "copy"
        )
        return (
            tuple(cluster.consensus.election_timeline()),
            tuple(deposed),
            dict(cluster.counters.as_dict()),
            cluster.engine.now,
            cluster.hits,
            cluster.misses,
            cluster.migrations[-1].as_dict(),
        )

    assert fingerprint() == fingerprint()


def test_unarmed_consensus_is_inert():
    """controller_replicas=0 leaves no trace: no group, no counters, and
    clients keep the direct single-controller RPC path."""
    cluster = build_ditto(256, 2, num_memory_nodes=2, faults=FaultPlan())
    assert cluster.consensus is None
    for client in cluster.clients:
        assert client.ep.consensus is None
    preload(cluster.engine, cluster.clients, range(64), value_size=VALUE_SIZE)
    counters = cluster.counters.as_dict()
    assert not any(name.startswith("consensus") for name in counters)
