"""Adaptive eviction weights replicate through the consensus log.

Before this, the learned expert weights lived only in the leader's
process: a leader crash would reset the cache's learned eviction policy
to uniform.  Now ``update_weights`` is a replicated command —
:class:`~repro.core.consensus.MetadataState` adopts the live
:class:`~repro.core.adaptive.GlobalWeights`, every replica folds the same
committed penalty sums into its own copy, and a successor leader carries
the learned state forward.
"""

import pytest

from repro.core.adaptive import GlobalWeights
from repro.core.consensus import ControllerGroup, MetadataState
from repro.core.elasticity import MembershipTable
from repro.memory.controller import SegmentState
from repro.sim import Engine
from repro.sim.faults import ControllerCrash, FaultInjector, FaultPlan

MB = 1 << 20


def build_group(n_replicas=3, seed=7, faults=None):
    engine = Engine()
    physical = MetadataState(MembershipTable([0]))
    physical.adopt_node(SegmentState(0, 0, 4 * MB))
    weights = GlobalWeights(2, learning_rate=0.1)
    physical.adopt_weights(weights)
    group = ControllerGroup(engine, physical, n_replicas, seed, faults=faults)
    return engine, group, weights


def submit(engine, client, command):
    return engine.run_process(client.submit(command))


def test_update_weights_commits_and_folds_into_live_weights():
    engine, group, weights = build_group()
    client = group.make_client()
    before = list(weights.weights)
    result = submit(engine, client, ("update_weights", (4.0, 0.0)))
    # The committed fold penalized expert 0 and is visible both in the
    # submit result and in the live (physical) weights object.
    assert result == weights.weights
    assert weights.weights[0] < before[0]
    assert weights.weights[1] > before[1]


def test_every_replica_converges_to_the_same_weights():
    engine, group, weights = build_group()
    client = group.make_client()
    for sums in ((3.0, 0.5), (0.0, 2.0), (1.5, 1.5)):
        submit(engine, client, ("update_weights", sums))
    engine.run()  # quiesce: followers apply the full committed log
    for replica in group.replicas:
        assert replica.state.weights is not None
        assert replica.state.weights.weights == pytest.approx(
            weights.weights
        )


def test_clone_copies_weights_without_the_update_hook():
    physical = MetadataState(MembershipTable([0]))
    weights = GlobalWeights(2, learning_rate=0.1)
    weights.on_update = lambda w: None
    physical.adopt_weights(weights)
    weights.handle_update([2.0, 0.0])
    copy = physical.clone()
    assert copy.weights is not weights
    assert copy.weights.weights == pytest.approx(weights.weights)
    # Replica copies must not re-fire sim-side RDMA publication hooks.
    assert copy.weights.on_update is None


def test_learned_weights_survive_leader_crash():
    engine = Engine()
    injector = FaultInjector(engine)
    physical = MetadataState(MembershipTable([0]))
    physical.adopt_node(SegmentState(0, 0, 4 * MB))
    weights = GlobalWeights(2, learning_rate=0.1)
    physical.adopt_weights(weights)
    group = ControllerGroup(engine, physical, 3, 7, faults=injector)
    engine.run(until=5_000)
    client = group.make_client()
    submit(engine, client, ("update_weights", (5.0, 0.0)))
    learned = list(weights.weights)
    assert learned[0] < learned[1]  # learning happened before the crash

    old = group.leader_id()
    injector.load(
        FaultPlan(controller_crashes=(ControllerCrash(old, 0.0, 8_000.0),)),
        offset_us=engine.now,
    )
    # Submitting through the outage forces the election; the fold still
    # applies exactly once despite any timed-out retries.
    submit(engine, client, ("update_weights", (0.0, 1.0)))
    new_leader = group.leader_id()
    assert new_leader != old
    engine.run(until=engine.now + 20_000)
    engine.run()
    successor = group.replicas[new_leader].state.weights
    assert successor.weights == pytest.approx(weights.weights)
    # The pre-crash learning is still reflected, not reset to uniform.
    assert successor.weights[0] < 0.5
