"""Tests for epoch-fenced memory-node elasticity (healthy paths).

Fault interactions during a drain live in ``test_elasticity_faults.py``;
this file covers the protocol pieces (membership table, epoch fence), node
add/remove on live data, graceful client departure, active shrink
convergence, and byte-identity of runs that never change membership.
"""

import pytest

from repro.core import (
    DittoCache,
    DittoCluster,
    EpochFence,
    MembershipTable,
    StaleEpoch,
    invariant_sweep,
)
from repro.core.elasticity import ACTIVE, DRAINING, RETIRED


def make_cache(**kwargs):
    defaults = dict(
        capacity_objects=256, object_bytes=128, num_clients=2, seed=5,
        num_memory_nodes=2,
    )
    defaults.update(kwargs)
    return DittoCache(**defaults)


def fill(cache, n, start=0):
    values = {}
    for i in range(start, start + n):
        key, value = f"key{i}", bytes([i % 251]) * 100
        cache.set(key, value)
        values[key] = value
    return values


def check(cache, values):
    """Every key is either correct or a clean miss; returns the hit count."""
    hits = 0
    for key, value in values.items():
        got = cache.get(key)
        if got is not None:
            assert got == value
            hits += 1
    return hits


class TestMembershipTable:
    def test_every_mutation_bumps_the_epoch(self):
        table = MembershipTable([0, 1])
        assert table.epoch == 0
        assert table.add(2) == 1
        assert table.set_state(1, DRAINING) == 2
        assert table.set_state(1, RETIRED) == 3
        assert table.epoch == 3

    def test_active_ids_and_snapshot(self):
        table = MembershipTable([0, 1, 2])
        table.set_state(1, DRAINING)
        assert table.active_ids() == (0, 2)
        epoch, entries = table.snapshot()
        assert epoch == 1
        assert dict(entries) == {0: ACTIVE, 1: DRAINING, 2: ACTIVE}

    def test_rejects_unknown_node_and_state(self):
        table = MembershipTable([0])
        with pytest.raises(KeyError):
            table.set_state(9, DRAINING)
        with pytest.raises(ValueError):
            table.set_state(0, "gone")


class TestEpochFence:
    def test_write_fence_blocks_mutations_not_reads(self):
        fence = EpochFence()
        fence.fence_writes(1000, 2000, node_id=1)
        fence.advance(1)
        fence.check_read(1500, "read", 1)  # reads keep flowing
        with pytest.raises(StaleEpoch) as exc:
            fence.check_write(1500, "write", 1)
        assert exc.value.epoch == 1
        fence.check_write(2000, "write", 1)  # outside the range

    def test_retire_blocks_everything_and_lifts_write_fence(self):
        fence = EpochFence()
        fence.fence_writes(1000, 2000, node_id=1)
        fence.retire(1000, 2000, node_id=1)
        fence.advance(2)
        with pytest.raises(StaleEpoch):
            fence.check_read(1000, "read", 1)
        with pytest.raises(StaleEpoch):
            fence.check_write(1999, "cas", 1)
        with pytest.raises(StaleEpoch):
            fence.check_rpc(1, "rpc")
        fence.check_rpc(0, "rpc")


class TestAddMemoryNode:
    def test_grows_the_pool_at_a_new_epoch(self):
        cache = make_cache()
        values = fill(cache, 200)
        node_id = cache.add_memory_node()
        cluster = cache.cluster
        assert node_id == 2
        assert len(cluster.nodes) == 3
        assert cluster.membership.epoch == 1
        assert cluster.counters.as_dict()["epoch_bump"] == 1
        # The new node gets a fresh, disjoint address range.
        spans = sorted((n.base, n.end) for n in cluster.nodes)
        for (_, prev_end), (next_base, _) in zip(spans, spans[1:]):
            assert next_base >= prev_end
        # Existing data is untouched and new data lands fine.
        values.update(fill(cache, 200, start=200))
        assert check(cache, values) > 0
        invariant_sweep(cluster)

    def test_new_node_serves_allocations(self):
        cache = make_cache(num_memory_nodes=1)
        fill(cache, 50)
        node = cache.cluster.add_memory_node()
        fill(cache, 400, start=50)
        cache.cluster.engine.run()
        assert node.nic.messages > 0  # data-path verbs reached the new node


class TestRemoveMemoryNode:
    def test_drain_migrates_and_retires(self):
        cache = make_cache(num_clients=3)
        values = fill(cache, 300)
        cache.add_memory_node()
        values.update(fill(cache, 200, start=300))
        record = cache.remove_memory_node(1)
        cluster = cache.cluster
        assert record["phase"] == "done"
        assert record["migrated_objects"] > 0
        assert record["migrated_bytes"] > 0
        assert record["epoch_end"] == record["epoch_start"] + 1
        assert [n.node_id for n in cluster.nodes] == [0, 2]
        assert check(cache, values) > 0
        invariant_sweep(cluster)

    def test_removed_range_is_fenced_for_stale_pointers(self):
        cache = make_cache()
        fill(cache, 300)
        cache.add_memory_node()
        removed = next(n for n in cache.cluster.nodes if n.node_id == 1)
        base = removed.base
        cache.remove_memory_node(1)
        client = cache.cluster.clients[0]
        with pytest.raises(StaleEpoch):
            cache.cluster.engine.run_process(client.ep.read(base, 64))

    def test_guards(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.cluster.remove_memory_node(0)  # node 0 holds the table
        with pytest.raises(ValueError):
            cache.cluster.remove_memory_node(7)  # no such node
        cache.cluster.remove_memory_node(1, on_phase=None)
        with pytest.raises(ValueError):
            cache.cluster.remove_memory_node(1)  # already draining

    def test_cannot_remove_last_node(self):
        cache = make_cache(num_memory_nodes=1)
        with pytest.raises(ValueError):
            cache.cluster.remove_memory_node(0)

    def test_draining_controller_rejects_new_grants(self):
        cache = make_cache()
        cluster = cache.cluster
        cluster._ensure_elastic()
        node = cluster.nodes[1]
        node.controller.draining = True
        client = cluster.clients[0]
        with pytest.raises(StaleEpoch):
            cluster.engine.run_process(
                client.ep.rpc(node, "alloc_segment", (4096, 0))
            )


class TestRemoveClients:
    def test_departing_clients_release_their_grants(self):
        cache = make_cache(num_clients=4)
        values = fill(cache, 300)
        cluster = cache.cluster
        granted_before = sum(
            len(segs)
            for node in cluster.nodes
            for segs in node.controller.granted_segments().values()
        )
        assert granted_before > 0
        cache.scale_clients(1)
        assert len(cluster.clients) == 1
        # Every grant now sits under a live owner: the survivor's id.
        live = {cluster.clients[0].client_id}
        for node in cluster.nodes:
            for owner in node.controller.granted_segments():
                assert owner in live
        assert cluster.counters.as_dict()["client_leave"] == 3
        invariant_sweep(cluster)
        assert check(cache, values) > 0

    def test_client_ids_stay_monotonic(self):
        cache = make_cache(num_clients=3)
        cache.scale_clients(1)
        new = cache.cluster.add_clients(2)
        ids = [c.client_id for c in cache.cluster.clients]
        assert ids == sorted(set(ids)), "a reused id would collide grant logs"
        assert all(c.client_id >= 3 for c in new)


class TestShrinkConvergence:
    def test_shrink_actively_converges(self):
        cache = make_cache(capacity_objects=128, max_capacity_objects=128)
        fill(cache, 128)
        used_before = cache.cluster.budget.used_bytes
        cache.resize(32)
        budget = cache.cluster.budget
        assert not budget.over_limit, "shrink must converge before returning"
        assert budget.used_bytes < used_before
        counters = cache.cluster.counters.as_dict()
        assert counters["shrink_evictions"] > 0
        assert counters["shrink_evicted_bytes"] >= used_before - budget.limit_bytes
        invariant_sweep(cache.cluster)

    def test_grow_does_not_start_shrink(self):
        cache = make_cache(capacity_objects=64, max_capacity_objects=256)
        fill(cache, 64)
        cache.resize(256)
        assert "shrink_evictions" not in cache.cluster.counters.as_dict()


class TestByteIdentity:
    """Arming the elasticity machinery without any scale event must not
    perturb the simulation: same ops, same timing, same stats."""

    @staticmethod
    def _run(arm: bool):
        cluster = DittoCluster(
            capacity_objects=128, object_bytes=128, num_clients=2, seed=9,
            num_memory_nodes=2,
        )
        if arm:
            cluster._ensure_elastic()
        run = cluster.engine.run_process
        for i in range(250):
            client = cluster.clients[i % 2]
            run(client.set(b"k%d" % (i % 90), bytes([i % 250]) * 80))
            run(client.get(b"k%d" % ((i * 7) % 90)))
        cluster.engine.run()
        return cluster.stats()

    def test_armed_idle_run_is_byte_identical(self):
        assert self._run(arm=False) == self._run(arm=True)
