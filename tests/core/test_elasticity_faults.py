"""Acceptance sweep: a node drain survives faults injected at every phase.

The matrix the issue demands: {client crash, controller-RPC failure, MN
outage} x {copy phase, handoff phase}, each injected at the exact moment the
drain enters the phase (the ``on_phase`` hook fires synchronously).  After
the drain and a quiesce, the system must be fully recovered: the migration
completed, the memory-accounting sweep holds (no block leaked or
double-owned across the epoch changes), and every key is either correct or
a clean miss.
"""

import pytest

from repro.bench.runner import Feed, Harness, make_value, pack_key, preload
from repro.bench.systems import build_ditto
from repro.core import invariant_sweep
from repro.sim.faults import ClientCrash, DropWindow, FaultPlan, RpcFailure, NodeOutage
from repro.workloads import make_ycsb

N_KEYS = 600
N_CLIENTS = 4
VALUE_SIZE = 232
SEED = 21

FAULTS = ("crash", "rpc", "outage")
PHASES = ("copy", "handoff")


def _drain_under_fault(fault: str, phase: str, seed: int = SEED):
    """Run a full drain with traffic and one fault armed at ``phase``."""
    cluster = build_ditto(
        2 * N_KEYS, N_CLIENTS, seed=seed, num_memory_nodes=3,
        faults=FaultPlan(),
    )
    preload(cluster.engine, cluster.clients, range(N_KEYS), value_size=VALUE_SIZE)
    harness = Harness(
        cluster.engine, value_size=VALUE_SIZE, miss_penalty_us=200.0,
        tolerate_failures=True,
    )
    feeds = [
        Feed.from_requests(
            make_ycsb("A", n_keys=N_KEYS, seed=seed + i, client_id=i)
            .requests(30_000)
        )
        for i in range(N_CLIENTS)
    ]
    harness.launch_all(cluster.clients, feeds)
    harness.warm(15_000.0)

    def on_phase(name):
        if name != phase:
            return
        now = cluster.engine.now
        if fault == "crash":
            harness.schedule_crashes(
                cluster, (ClientCrash(client_index=1, at_us=5.0),),
                offset_us=now,
            )
        elif fault == "rpc":
            cluster.fault_injector.load(
                FaultPlan(
                    rpc_failures=(RpcFailure(0.0, 2_500.0, prob=0.6),),
                    seed=seed,
                ),
                offset_us=now,
            )
        else:  # MN outage on a surviving node holding data and grants
            cluster.fault_injector.load(
                FaultPlan(outages=(NodeOutage(1, 0.0, 2_000.0),), seed=seed),
                offset_us=now,
            )

    proc = cluster.remove_memory_node(2, on_phase=on_phase)
    while not proc.finished and cluster.engine.now < 20_000_000.0:
        harness.measure(20_000.0)
    harness.stop_all()
    cluster.engine.run()  # drain drivers, recoveries, async posts

    # Lease repair: scrub half-installed slots a crash may have abandoned
    # (two sightings one lease apart, as the protocol requires).
    survivor = next(c for c in cluster.clients if not c.dead)
    cluster.engine.run_process(survivor.repair_scan())
    cluster.engine.run(until=cluster.engine.now + 2_000.0)
    cluster.engine.run_process(survivor.repair_scan())
    cluster.engine.run()
    return cluster, harness, proc


@pytest.mark.parametrize("phase", PHASES)
@pytest.mark.parametrize("fault", FAULTS)
def test_drain_survives_fault(fault, phase):
    cluster, harness, proc = _drain_under_fault(fault, phase)
    assert proc.finished, "the drain wedged"
    record = cluster.migrations[-1]
    assert record.phase == "done"
    assert record.migrated_objects > 0
    assert [n.node_id for n in cluster.nodes] == [0, 1]

    if fault == "crash":
        counters = cluster.counters.as_dict()
        assert counters["client_crash"] == 1
        assert counters["crash_recovery"] == 1

    # No block leaked or double-owned across the epoch changes.
    report = invariant_sweep(cluster)
    assert report["live_bytes"] == cluster.budget.used_bytes

    # Every key is correct or a clean miss: the preload/refill value for a
    # key is deterministic, so any hit must return exactly it.
    value = make_value(VALUE_SIZE)
    survivor = next(c for c in cluster.clients if not c.dead)
    run = cluster.engine.run_process
    hits = 0
    for key_id in range(N_KEYS):
        got = run(survivor.get(pack_key(key_id)))
        if got is not None:
            assert got == value
            hits += 1
    assert hits > 0


def test_drain_under_faults_is_deterministic():
    def fingerprint():
        cluster, harness, _proc = _drain_under_fault("rpc", "copy")
        return (
            dict(cluster.counters.as_dict()),
            cluster.engine.now,
            cluster.hits,
            cluster.misses,
            harness.failed_ops,
            cluster.migrations[-1].as_dict(),
        )

    assert fingerprint() == fingerprint()


def test_drain_survives_outage_of_the_draining_node_itself():
    """The migrator's READs of the source node ride out its outage window."""
    cluster, harness, proc = _drain_under_fault("outage", "copy")
    # Re-run with the outage aimed at the draining node instead.
    cluster = build_ditto(
        2 * N_KEYS, N_CLIENTS, seed=SEED, num_memory_nodes=3,
        faults=FaultPlan(),
    )
    preload(cluster.engine, cluster.clients, range(N_KEYS), value_size=VALUE_SIZE)
    harness = Harness(
        cluster.engine, value_size=VALUE_SIZE, miss_penalty_us=200.0,
        tolerate_failures=True,
    )
    feeds = [
        Feed.from_requests(
            make_ycsb("B", n_keys=N_KEYS, seed=SEED + i, client_id=i)
            .requests(30_000)
        )
        for i in range(N_CLIENTS)
    ]
    harness.launch_all(cluster.clients, feeds)
    harness.warm(15_000.0)

    def on_phase(name):
        if name == "copy":
            cluster.fault_injector.load(
                FaultPlan(outages=(NodeOutage(2, 0.0, 2_000.0),), seed=SEED),
                offset_us=cluster.engine.now,
            )

    proc = cluster.remove_memory_node(2, on_phase=on_phase)
    while not proc.finished and cluster.engine.now < 20_000_000.0:
        harness.measure(20_000.0)
    harness.stop_all()
    cluster.engine.run()
    assert proc.finished
    assert cluster.migrations[-1].phase == "done"
    assert cluster.counters.as_dict().get("fault_retry", 0) > 0
    invariant_sweep(cluster)
