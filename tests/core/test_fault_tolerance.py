"""Fault-tolerant client paths: retries, degradation, repair, crash recovery.

The chaos counterpart of ``test_client.py``: everything here runs under an
armed :class:`~repro.sim.faults.FaultInjector`.  The memory-accounting sweep
(``repro.core.invariants``) is the oracle — after every scenario quiesces,
no granted byte may be leaked and the budget ledger must match the table.
"""

import pytest

from repro.bench.runner import Feed, Harness, pack_key, preload
from repro.bench.systems import build_ditto
from repro.core import CacheOperationError, invariant_sweep
from repro.rdma import NodeUnavailable
from repro.sim import (
    ClientCrash,
    DropWindow,
    FaultPlan,
    LatencySpike,
    NodeOutage,
    Timeout,
)

VALUE = b"v" * 64


def drive(cluster, gen):
    return cluster.engine.run_process(gen)


def sleep_until(cluster, t_us):
    def proc():
        delay = t_us - cluster.engine.now
        if delay > 0:
            yield Timeout(delay)

    cluster.engine.run_process(proc())


def insert_feed(keys):
    return Feed.from_requests([("insert", k) for k in keys])


class TestGetDegradation:
    def test_get_misses_through_when_node_down(self):
        plan = FaultPlan(outages=(NodeOutage(0, 0.0, 1e9),))
        cluster = build_ditto(64, 1, seed=1, faults=plan)
        client = cluster.clients[0]
        assert drive(cluster, client.get(b"key")) is None
        counters = cluster.counters.as_dict()
        assert counters["fault_miss_through"] == 1
        assert counters["fault_node_unavailable"] == 1
        assert client.misses == 1

    def test_get_retries_through_transient_drops(self):
        plan = FaultPlan(drops=(DropWindow(0.0, 150.0, verbs=("read",)),), seed=2)
        cluster = build_ditto(64, 1, seed=2, faults=plan)
        client = cluster.clients[0]
        result = drive(cluster, client.get(b"key"))
        assert result is None  # uncached; the point is it didn't raise
        counters = cluster.counters.as_dict()
        assert counters["fault_verb_timeout"] >= 1
        assert counters["fault_retry"] >= 1
        assert cluster.engine.now > 100.0  # burned at least one verb timeout

    def test_latency_spike_slows_but_completes(self):
        plan = FaultPlan(spikes=(LatencySpike(0.0, 1e9, extra_us=40.0),))
        cluster = build_ditto(64, 1, seed=3, faults=plan)
        client = cluster.clients[0]
        drive(cluster, client.set(b"key", VALUE))
        assert drive(cluster, client.get(b"key")) == VALUE
        assert cluster.counters.as_dict()["fault_latency_spike"] > 0


class TestSetFailures:
    def test_set_raises_structured_error_when_node_down(self):
        plan = FaultPlan(outages=(NodeOutage(0, 0.0, 1e9),))
        cluster = build_ditto(64, 1, seed=4, faults=plan)
        client = cluster.clients[0]
        with pytest.raises(CacheOperationError) as excinfo:
            drive(cluster, client.set(b"key", VALUE))
        err = excinfo.value
        assert err.op == "set"
        assert err.key == b"key"
        assert err.fault_attempts == cluster.config.fault_retries + 1
        assert isinstance(err.cause, NodeUnavailable)
        assert err.elapsed_us > 0
        assert "set(b'key')" in str(err)
        # the aborted attempts must not leak anything
        assert invariant_sweep(cluster)["live_bytes"] == 0

    def test_op_deadline_caps_a_set(self):
        plan = FaultPlan(drops=(DropWindow(0.0, 1e9),))
        cluster = build_ditto(
            64, 1, seed=5, faults=plan, op_deadline_us=150.0, fault_retries=100
        )
        client = cluster.clients[0]
        with pytest.raises(CacheOperationError) as excinfo:
            drive(cluster, client.set(b"key", VALUE))
        assert "deadline" in str(excinfo.value)

    def test_backoff_grows_and_caps(self):
        cluster = build_ditto(64, 1, seed=6, faults=FaultPlan())
        client = cluster.clients[0]
        b1 = client._backoff_us(1)
        assert 20.0 <= b1 <= 30.0  # base 20 + up to 50% jitter
        b7 = client._backoff_us(7)
        assert b7 <= cluster.config.retry_backoff_max_us * 1.5
        cluster.config.retry_backoff_us = 0.0
        assert client._backoff_us(3) == 0.0


class TestOutOfMemoryRecovery:
    def _exhaust_pool(self, cluster):
        """Make every future segment RPC fail and every bump cursor dry."""
        for node in cluster.nodes:
            node.controller._next_free = node.end
            node.controller._free_segments.clear()
        for client in cluster.clients:
            for alloc in client.alloc.allocators:
                if alloc._bump_addr is not None:
                    remainder = alloc._bump_end - alloc._bump_addr
                    if remainder > 0:
                        alloc._spare.append((alloc._bump_addr, remainder))
                    alloc._bump_addr = alloc._bump_end

    def test_oom_triggers_eviction_then_retry(self):
        cluster = build_ditto(64, 1, seed=7, faults=FaultPlan(), segment_bytes=4096)
        client = cluster.clients[0]
        for k in range(16):
            drive(cluster, client.set(pack_key(k), VALUE))
        self._exhaust_pool(cluster)
        assert drive(cluster, client.set(b"fresh-key", VALUE)) is True
        counters = cluster.counters.as_dict()
        assert counters["alloc_oom"] >= 1
        assert drive(cluster, client.get(b"fresh-key")) == VALUE

    def test_oom_with_nothing_evictable_is_structured(self):
        cluster = build_ditto(64, 1, seed=8, faults=FaultPlan(), segment_bytes=4096)
        client = cluster.clients[0]
        self._exhaust_pool(cluster)  # empty cache: nothing to evict
        with pytest.raises(CacheOperationError) as excinfo:
            drive(cluster, client.set(b"key", VALUE))
        assert "exhausted" in str(excinfo.value)


class TestLeaseRepair:
    def _cluster_with_suspects(self):
        """Insert under a write-drop window so some metadata writes vanish."""
        plan = FaultPlan(
            drops=(DropWindow(0.0, 50_000.0, prob=0.4, verbs=("write",)),), seed=9
        )
        cluster = build_ditto(128, 1, seed=9, faults=plan)
        client = cluster.clients[0]

        def inserts():
            for k in range(40):
                try:
                    yield from client.set(pack_key(k), VALUE)
                except CacheOperationError:
                    pass  # foreground write lost to the same window

        drive(cluster, inserts())
        cluster.engine.run()  # drain in-flight async metadata writes
        return cluster, client

    def _suspect_slots(self, cluster):
        """Slots matching the repair predicate: object with all-zero metadata."""
        from repro.core import layout as L

        lay = cluster.layout
        out = []
        for index in range(lay.total_slots):
            raw = cluster.node.read_bytes(lay.slot_addr(index), L.SLOT_SIZE)
            slot = L.parse_slot(index, lay.slot_addr(index), raw)
            if (
                slot.is_object
                and slot.key_hash == 0
                and slot.insert_ts == 0
                and slot.last_ts == 0
            ):
                out.append(slot)
        return out

    def test_dropped_metadata_write_creates_suspects(self):
        cluster, _ = self._cluster_with_suspects()
        assert cluster.counters.as_dict()["fault_post_dropped"] >= 1
        assert len(self._suspect_slots(cluster)) >= 1

    def test_repair_scan_reclaims_after_lease(self):
        cluster, client = self._cluster_with_suspects()
        suspects = len(self._suspect_slots(cluster))
        sleep_until(cluster, 60_000.0)  # leave the drop window
        drive(cluster, client.repair_scan())  # first sighting starts leases
        assert len(self._suspect_slots(cluster)) == suspects  # lease not up
        sleep_until(cluster, cluster.engine.now + cluster.config.repair_lease_us + 1)
        drive(cluster, client.repair_scan())  # second sighting reclaims
        assert self._suspect_slots(cluster) == []
        assert cluster.counters.as_dict()["lease_repair"] == suspects
        invariant_sweep(cluster)

    def test_active_object_self_heals_out_of_suspicion(self):
        cluster, client = self._cluster_with_suspects()
        sleep_until(cluster, 60_000.0)
        suspect = self._suspect_slots(cluster)
        assert suspect
        # A Get finds the half-installed object by fingerprint and re-posts
        # its timestamp, healing it before any lease can expire.
        for k in range(40):
            drive(cluster, client.get(pack_key(k)))
        cluster.engine.run()  # drain the async metadata writes
        assert self._suspect_slots(cluster) == []


class TestCrashStorm:
    N_CLIENTS = 26
    N_CRASHES = 20

    def _run_storm(self, seed=11):
        cluster = build_ditto(
            256,
            self.N_CLIENTS,
            seed=seed,
            faults=FaultPlan(),
            segment_bytes=8192,
        )
        harness = Harness(cluster.engine, value_size=64, tolerate_failures=True)
        # Heavy Set contention: every client hammers the same small key range.
        feeds = [
            insert_feed([(i * 17 + j) % 96 for j in range(400)])
            for i in range(self.N_CLIENTS)
        ]
        harness.launch_all(cluster.clients, feeds)
        crashes = tuple(
            ClientCrash(client_index=i, at_us=1_500.0 + 311.0 * i)
            for i in range(self.N_CRASHES)
        )
        harness.schedule_crashes(cluster, crashes)
        cluster.engine.run(until=40_000.0)
        harness.stop_all()
        cluster.engine.run()  # drain drivers, recoveries, async posts
        return cluster, harness

    def test_storm_leaves_no_leaks(self):
        cluster, _ = self._run_storm()
        counters = cluster.counters.as_dict()
        assert counters["client_crash"] == self.N_CRASHES
        assert counters["crash_recovery"] == self.N_CRASHES
        assert sum(1 for c in cluster.clients if c.dead) == self.N_CRASHES
        report = invariant_sweep(cluster)
        assert report["granted_bytes"] > 0
        assert report["live_bytes"] == cluster.budget.used_bytes

    def test_storm_reclaims_interrupted_blocks(self):
        cluster, _ = self._run_storm()
        counters = cluster.counters.as_dict()
        # With 20 kills inside Set-heavy loops, at least some must have died
        # holding an uncommitted block or budget.
        assert counters.get("crash_block_reclaimed", 0) >= 1

    def test_survivors_keep_working_after_storm(self):
        cluster, _ = self._run_storm()
        survivor = next(c for c in cluster.clients if not c.dead)
        drive(cluster, survivor.set(b"post-storm", VALUE))
        assert drive(cluster, survivor.get(b"post-storm")) == VALUE
        invariant_sweep(cluster)


class TestDeterminismUnderFaults:
    def _scenario(self, plan_seed=13):
        plan = FaultPlan(
            drops=(DropWindow(3_000.0, 8_000.0, prob=0.5),),
            spikes=(LatencySpike(5_000.0, 9_000.0, extra_us=10.0),),
            outages=(NodeOutage(0, 10_000.0, 12_000.0),),
            client_crashes=(
                ClientCrash(0, 6_000.0),
                ClientCrash(1, 7_000.0),
            ),
            seed=plan_seed,
        )
        cluster = build_ditto(128, 6, seed=3, faults=plan)
        harness = Harness(
            cluster.engine,
            value_size=64,
            miss_penalty_us=100.0,
            tolerate_failures=True,
        )
        feeds = [
            Feed.from_requests(
                [("insert", (i * 31 + j) % 64) for j in range(50)]
                + [("read", (i + j) % 64) for j in range(200)]
            )
            for i in range(6)
        ]
        harness.launch_all(cluster.clients, feeds)
        harness.schedule_crashes(cluster, plan.client_crashes)
        cluster.engine.run(until=20_000.0)
        harness.stop_all()
        cluster.engine.run()
        return (
            dict(cluster.counters.as_dict()),
            cluster.engine.now,
            cluster.hits,
            cluster.misses,
            harness.failed_ops,
        )

    def test_same_seed_and_plan_is_bit_identical(self):
        assert self._scenario(13) == self._scenario(13)

    def test_plan_seed_changes_the_run(self):
        assert self._scenario(13) != self._scenario(14)
