"""Unit tests for the frequency-counter cache (write combining, §4.2.2)."""

import pytest

from repro.core import FrequencyCounterCache


def test_first_access_buffers():
    fc = FrequencyCounterCache(threshold=10)
    assert fc.record(b"k", 100, now=0.0) == []
    assert len(fc) == 1


def test_threshold_flushes_combined_delta():
    fc = FrequencyCounterCache(threshold=3)
    flushes = []
    for i in range(3):
        flushes += fc.record(b"k", 100, now=float(i))
    assert flushes == [(100, 3)]
    assert len(fc) == 0


def test_combining_ratio_bounded_by_threshold():
    """The paper's claim: FAAs reduced to up to 1/t of accesses."""
    fc = FrequencyCounterCache(threshold=10)
    total_faas = 0
    for i in range(100):
        total_faas += len(fc.record(b"k", 100, now=float(i)))
    total_faas += len(fc.flush_all())
    assert total_faas == 10  # 100 accesses -> 10 FAAs of delta 10


def test_capacity_evicts_earliest_insert():
    fc = FrequencyCounterCache(capacity_bytes=2 * (1 + 24), threshold=100)
    assert fc.record(b"a", 1, now=0.0) == []
    assert fc.record(b"b", 2, now=1.0) == []
    flushes = fc.record(b"c", 3, now=2.0)  # over capacity: a evicted
    assert flushes == [(1, 1)]
    assert len(fc) == 2


def test_slot_move_flushes_stale_delta():
    fc = FrequencyCounterCache(threshold=100)
    fc.record(b"k", 100, now=0.0)
    fc.record(b"k", 100, now=1.0)
    flushes = fc.record(b"k", 200, now=2.0)  # object moved slots
    assert (100, 2) in flushes
    # the new slot's counting starts fresh
    assert fc.flush_all() == [(200, 1)]


def test_threshold_one_bypasses_buffering():
    fc = FrequencyCounterCache(threshold=1)
    assert fc.record(b"k", 100, now=0.0) == [(100, 1)]
    assert len(fc) == 0


def test_tiny_capacity_bypasses_buffering():
    fc = FrequencyCounterCache(capacity_bytes=4, threshold=10)
    assert fc.record(b"some-long-key", 100, now=0.0) == [(100, 1)]


def test_max_age_flush():
    fc = FrequencyCounterCache(threshold=100, max_age_us=10.0)
    fc.record(b"old", 1, now=0.0)
    flushes = fc.record(b"new", 2, now=50.0)
    assert (1, 1) in flushes


def test_flush_all_drains_everything():
    fc = FrequencyCounterCache(threshold=100)
    for key, addr in ((b"a", 1), (b"b", 2)):
        fc.record(key, addr, now=0.0)
        fc.record(key, addr, now=1.0)
    assert sorted(fc.flush_all()) == [(1, 2), (2, 2)]
    assert len(fc) == 0 and fc.used_bytes == 0


def test_combined_counter_tracks_absorbed_accesses():
    fc = FrequencyCounterCache(threshold=5)
    for i in range(4):
        fc.record(b"k", 1, now=float(i))
    assert fc.combined == 3  # first access is not "combined"


def test_rejects_bad_threshold():
    with pytest.raises(ValueError):
        FrequencyCounterCache(threshold=0)


def test_used_bytes_accounting():
    fc = FrequencyCounterCache(threshold=100)
    fc.record(b"abc", 1, now=0.0)
    assert fc.used_bytes == 3 + FrequencyCounterCache.ENTRY_OVERHEAD
    fc.flush_all()
    assert fc.used_bytes == 0
