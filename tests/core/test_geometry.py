"""The geometry plan is the single source of truth for cluster sizing.

Both substrates must compute identical layouts: the sim cluster
(:class:`~repro.core.cache.DittoCluster`) consumes
:func:`~repro.core.geometry.plan_cluster` directly, and the real
substrate recomputes the same plan on the launcher *and* client sides so
addresses agree without shipping a layout over the wire.  These tests pin
the plan to what the built cluster actually instantiates.
"""

import pytest

from repro.core.cache import DittoCluster
from repro.core.config import DittoConfig
from repro.core.geometry import ext_schema, plan_cluster


def _build(num_memory_nodes=2, capacity=2048, clients=8, object_bytes=256,
           max_capacity=None, segment_bytes=256 * 1024, **kwargs):
    config = DittoConfig(**kwargs)
    plan = plan_cluster(
        capacity, object_bytes, clients, config=config,
        num_memory_nodes=num_memory_nodes, segment_bytes=segment_bytes,
        max_capacity_objects=max_capacity,
    )
    cluster = DittoCluster(
        capacity_objects=capacity, object_bytes=object_bytes,
        num_clients=clients, config=config,
        num_memory_nodes=num_memory_nodes, segment_bytes=segment_bytes,
        max_capacity_objects=max_capacity,
    )
    return plan, cluster


@pytest.mark.parametrize("num_memory_nodes", [1, 2, 3])
def test_plan_matches_built_cluster(num_memory_nodes):
    plan, cluster = _build(num_memory_nodes=num_memory_nodes)
    assert [(n.node_id, n.base, n.size) for n in cluster.nodes] == list(
        plan.node_ranges
    )
    assert cluster.budget.limit_bytes == plan.budget_bytes
    assert cluster.ext_fields == plan.ext_fields
    assert cluster.history_size == plan.history_size
    assert cluster.segment_bytes == plan.segment_bytes
    assert cluster.block_bytes_per_object == plan.block_bytes_per_object
    layout = cluster.layout
    assert (layout.base, layout.num_buckets, layout.table_addr) == (
        plan.layout.base, plan.layout.num_buckets, plan.layout.table_addr
    )
    # Node 0's heap starts above the fixed structures.
    assert plan.reserve >= plan.layout.reserved_bytes


def test_plan_is_deterministic_and_elastic_ceiling_sizes_the_table():
    plan_a = plan_cluster(2048, 256, 8, num_memory_nodes=2)
    plan_b = plan_cluster(2048, 256, 8, num_memory_nodes=2)
    assert plan_a.node_ranges == plan_b.node_ranges
    assert plan_a.layout.num_buckets == plan_b.layout.num_buckets
    grown = plan_cluster(
        2048, 256, 8, num_memory_nodes=2, max_capacity_objects=8192
    )
    assert grown.max_capacity_objects == 8192
    assert grown.layout.num_buckets > plan_a.layout.num_buckets


def test_ext_schema_tracks_policies():
    # LRU/LFU live in the slot's access info; LIRS needs an ext field.
    assert ext_schema(("lru", "lfu")) == ()
    assert "lirs_irr" in ext_schema(("lru", "lirs"))
    config = DittoConfig()
    plan = plan_cluster(512, 256, 2, config=config)
    assert plan.ext_fields == ext_schema(config.policies)


def test_plan_rejects_degenerate_shapes():
    with pytest.raises(ValueError):
        plan_cluster(2048, 256, 8, num_memory_nodes=0)
    with pytest.raises(ValueError):
        plan_cluster(0, 256, 8)
    with pytest.raises(ValueError):
        plan_cluster(2048, 256, 8, max_capacity_objects=1024)
