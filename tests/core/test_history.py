"""Unit tests for the logical FIFO queue / lightweight history (§4.3.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import HISTORY_WRAP, RemoteFifoHistory, history_age, is_expired


class TestHistoryAge:
    def test_simple_age(self):
        assert history_age(100, 90) == 10

    def test_zero_age(self):
        assert history_age(5, 5) == 0

    def test_wraparound(self):
        # counter wrapped: id near the top, counter just past zero
        assert history_age(3, HISTORY_WRAP - 2) == 5

    @given(st.integers(0, HISTORY_WRAP - 1), st.integers(0, HISTORY_WRAP - 1))
    def test_age_in_range(self, counter, hist_id):
        assert 0 <= history_age(counter, hist_id) < HISTORY_WRAP


class TestExpiry:
    def test_fresh_entry_valid(self):
        assert not is_expired(100, 95, history_size=10)

    def test_exactly_at_limit_valid(self):
        assert not is_expired(110, 100, history_size=10)

    def test_past_limit_expired(self):
        assert is_expired(111, 100, history_size=10)

    def test_wraparound_expiry(self):
        # paper's second rule: v1 + 2^48 - v2 > l
        assert not is_expired(1, HISTORY_WRAP - 1, history_size=10)
        assert is_expired(20, HISTORY_WRAP - 1, history_size=10)


class TestRemoteFifoHistory:
    def test_insert_lookup(self):
        history = RemoteFifoHistory(base_addr=0, size=4)
        history.insert(key_hash=111, history_id=0, expert_bitmap=0b01)
        assert history.lookup(111) == (0, 0b01)
        assert history.lookup(222) is None

    def test_fifo_overwrite_removes_old_entries(self):
        history = RemoteFifoHistory(base_addr=0, size=2)
        history.insert(1, 0, 0)
        history.insert(2, 1, 0)
        history.insert(3, 2, 0)  # overwrites slot of id 0
        assert history.lookup(1) is None
        assert history.lookup(2) is not None
        assert history.lookup(3) is not None

    def test_entry_addresses_within_region(self):
        history = RemoteFifoHistory(base_addr=1000, size=8)
        for hist_id in range(20):
            addr = history.entry_addr(hist_id)
            assert 1008 <= addr < 1000 + history.region_bytes

    def test_region_bytes(self):
        history = RemoteFifoHistory(base_addr=0, size=10)
        assert history.region_bytes == 8 + 10 * 40

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RemoteFifoHistory(0, 0)
