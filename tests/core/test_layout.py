"""Unit tests for the sample-friendly hash table byte layouts (Figs. 7, 9)."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import layout as L


class TestAtomicField:
    def test_pack_unpack_roundtrip(self):
        atomic = L.pack_atomic(0x123456789ABC, 0x7F, 3)
        assert L.unpack_atomic(atomic) == (0x123456789ABC, 0x7F, 3)

    def test_fits_in_64_bits(self):
        atomic = L.pack_atomic(L.POINTER_MASK, 0xFF, 0xFF)
        assert atomic < (1 << 64)

    def test_pointer_over_48_bits_rejected(self):
        with pytest.raises(ValueError):
            L.pack_atomic(1 << 48, 0, 1)

    def test_bad_fp_or_size_rejected(self):
        with pytest.raises(ValueError):
            L.pack_atomic(0, 256, 1)
        with pytest.raises(ValueError):
            L.pack_atomic(0, 0, 300)

    @given(
        st.integers(0, L.POINTER_MASK),
        st.integers(0, 255),
        st.integers(0, 255),
    )
    def test_roundtrip_arbitrary(self, pointer, fp, size):
        assert L.unpack_atomic(L.pack_atomic(pointer, fp, size)) == (pointer, fp, size)


class TestFingerprint:
    def test_never_zero(self):
        assert L.fingerprint(0) != 0
        for h in range(0, 1 << 16, 997):
            assert 1 <= L.fingerprint(h) <= 255

    def test_derived_from_hash_high_bits(self):
        assert L.fingerprint(0xAB << 48) == 0xAB


class TestStableHash:
    def test_deterministic(self):
        assert L.stable_hash64(b"key") == L.stable_hash64(b"key")

    def test_distinct_keys_differ(self):
        hashes = {L.stable_hash64(b"key%d" % i) for i in range(1000)}
        assert len(hashes) == 1000

    def test_64_bit_range(self):
        assert 0 <= L.stable_hash64(b"x") < (1 << 64)


class TestSlot:
    def _slot(self, atomic, insert_ts=0, last_ts=0, freq=0, key_hash=0):
        return L.Slot(0, 0, atomic, insert_ts, last_ts, freq, key_hash)

    def test_empty(self):
        slot = self._slot(0)
        assert slot.is_empty and not slot.is_object and not slot.is_history

    def test_object(self):
        slot = self._slot(L.pack_atomic(64, 7, 2))
        assert slot.is_object
        assert slot.pointer == 64
        assert slot.fp == 7
        assert slot.size_blocks == 2
        assert slot.object_bytes == 128

    def test_history_entry(self):
        atomic = L.pack_history_atomic(12345)
        slot = self._slot(atomic, insert_ts=0b101)
        assert slot.is_history and not slot.is_object
        assert slot.history_id == 12345
        assert slot.expert_bitmap == 0b101

    def test_history_size_tag_is_0xff(self):
        _p, _fp, size = L.unpack_atomic(L.pack_history_atomic(1))
        assert size == L.HISTORY_SIZE_TAG == 0xFF

    def test_parse_slot_layout_is_40_bytes(self):
        raw = struct.pack("<QQQQQ", L.pack_atomic(64, 1, 1), 10, 20, 30, 40)
        assert len(raw) == L.SLOT_SIZE == 40
        slot = L.parse_slot(5, 1000, raw)
        assert (slot.index, slot.addr) == (5, 1000)
        assert (slot.insert_ts, slot.last_ts, slot.freq, slot.key_hash) == (10, 20, 30, 40)

    def test_parse_slots_matches_parse_slot(self):
        raws = [
            struct.pack("<QQQQQ", L.pack_atomic(64 * (i + 1), i + 1, 1), i, i, i, i)
            for i in range(4)
        ]
        blob = b"".join(raws)
        many = L.parse_slots(10, 4000, blob, 4)
        for i, slot in enumerate(many):
            single = L.parse_slot(10 + i, 4000 + i * L.SLOT_SIZE, raws[i])
            assert slot.atomic == single.atomic
            assert slot.addr == single.addr
            assert slot.index == single.index


class TestObjectCodec:
    def test_roundtrip(self):
        raw = L.encode_object(b"key", b"value", b"ext")
        assert L.decode_object(raw) == (b"key", b"value", b"ext")

    def test_roundtrip_with_padding(self):
        raw = L.encode_object(b"k", b"v") + bytes(64)
        assert L.decode_object(raw) == (b"k", b"v", b"")

    def test_truncated_raises(self):
        raw = L.encode_object(b"key", b"value")
        with pytest.raises(ValueError):
            L.decode_object(raw[:-2])

    def test_object_span(self):
        assert L.object_span(3, 5, 0) == L.OBJECT_HEADER_SIZE + 8
        assert L.object_span(3, 5, 16) == L.OBJECT_HEADER_SIZE + 24

    def test_oversized_components_rejected(self):
        with pytest.raises(ValueError):
            L.encode_object(b"x" * 70000, b"")

    @given(st.binary(max_size=64), st.binary(max_size=256), st.binary(max_size=32))
    def test_roundtrip_arbitrary(self, key, value, ext):
        assert L.decode_object(L.encode_object(key, value, ext)) == (key, value, ext)


class TestDittoLayout:
    def test_geometry(self):
        lay = L.DittoLayout(base=0, num_buckets=16)
        assert lay.total_slots == 16 * 8
        assert lay.table_bytes == 16 * 8 * 40
        assert lay.table_addr % 64 == 0
        assert lay.history_counter_addr == 0

    def test_slot_addresses_contiguous(self):
        lay = L.DittoLayout(base=0, num_buckets=4)
        assert lay.slot_addr(1) - lay.slot_addr(0) == L.SLOT_SIZE
        assert lay.bucket_addr(1) - lay.bucket_addr(0) == 8 * L.SLOT_SIZE

    def test_bucket_index_in_range(self):
        lay = L.DittoLayout(base=0, num_buckets=7)
        for h in (0, 6, 7, 12345678901234567):
            assert 0 <= lay.bucket_index(h) < 7

    def test_slot_index_out_of_range(self):
        lay = L.DittoLayout(base=0, num_buckets=2)
        with pytest.raises(IndexError):
            lay.slot_addr(lay.total_slots)

    def test_reserved_covers_table(self):
        lay = L.DittoLayout(base=0, num_buckets=8)
        assert lay.reserved_bytes >= lay.table_bytes

    def test_metadata_overhead_is_40_bytes_per_slot(self):
        # Paper §4.4: 8-byte atomic field + 32 bytes of access information.
        assert L.SLOT_SIZE == 40
        assert L.STATELESS_OFF == 8 and L.STATELESS_SIZE == 16
        assert L.FREQ_OFF == 24 and L.HASH_OFF == 32

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            L.DittoLayout(base=0, num_buckets=0)
