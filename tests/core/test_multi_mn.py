"""Tests for memory pools with multiple memory nodes (paper §5.1)."""

import pytest

from repro.core import DittoCluster
from repro.memory import MemoryNode, MemoryPool, StripedAllocator, Controller
from repro.rdma import RdmaEndpoint
from repro.sim import Engine


def make_cluster(nodes: int, capacity: int = 256, clients: int = 2):
    return DittoCluster(
        capacity_objects=capacity, object_bytes=64, num_clients=clients,
        seed=1, num_memory_nodes=nodes,
    )


class TestStripedAllocator:
    @pytest.fixture()
    def striped(self):
        engine = Engine()
        nodes = []
        base = 0
        for node_id in range(3):
            node = MemoryNode(engine, size=64 * 1024, base=base, node_id=node_id)
            Controller(node, cores=1)
            nodes.append(node)
            base += 64 * 1024
        ep = RdmaEndpoint(engine, MemoryPool(nodes))
        return engine, nodes, StripedAllocator(ep, nodes, segment_bytes=4096)

    def test_round_robin_across_nodes(self, striped):
        engine, nodes, allocator = striped
        owners = set()
        for _ in range(3):
            addr = engine.run_process(allocator.alloc(4096))
            owners.add(next(n.node_id for n in nodes if n.contains(addr)))
        assert owners == {0, 1, 2}

    def test_free_routes_by_address(self, striped):
        engine, nodes, allocator = striped
        a = engine.run_process(allocator.alloc(100))
        allocator.free(a, 100)
        assert allocator.free_blocks == 2
        b = engine.run_process(allocator.alloc(100))
        assert b == a

    def test_free_rejects_foreign_address(self, striped):
        _engine, _nodes, allocator = striped
        with pytest.raises(ValueError):
            allocator.free(10**9, 64)

    def test_falls_over_on_node_exhaustion(self, striped):
        engine, nodes, allocator = striped
        # Exhaust by allocating more than one node holds; allocation keeps
        # succeeding as long as any node has room.
        for _ in range(3 * 15):  # 45 x 4 KiB < 3 x 64 KiB
            engine.run_process(allocator.alloc(4096))

    def test_requires_nodes(self):
        engine = Engine()
        node = MemoryNode(engine, size=1024)
        ep = RdmaEndpoint(engine, MemoryPool([node]))
        with pytest.raises(ValueError):
            StripedAllocator(ep, [])


class TestMultiMnCluster:
    def test_cache_correct_with_three_nodes(self):
        cluster = make_cluster(3)
        run = cluster.engine.run_process
        client = cluster.clients[0]
        for i in range(300):
            run(client.set(b"k%d" % i, b"v%d" % i))
        hits = 0
        for i in range(300):
            value = run(client.get(b"k%d" % i))
            if value is not None:
                assert value == b"v%d" % i
                hits += 1
        assert hits > 0

    def test_objects_spread_across_node_nics(self):
        cluster = make_cluster(3)
        run = cluster.engine.run_process
        client = cluster.clients[0]
        for i in range(200):
            run(client.set(b"k%d" % i, b"v" * 40))
            run(client.get(b"k%d" % i))
        cluster.engine.run()
        data_messages = [node.nic.messages for node in cluster.nodes[1:]]
        assert all(m > 0 for m in data_messages)

    def test_index_structures_stay_on_node_zero(self):
        cluster = make_cluster(2)
        lay = cluster.layout
        assert cluster.nodes[0].contains(lay.history_counter_addr)
        assert cluster.nodes[0].contains(lay.table_addr, lay.table_bytes)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            make_cluster(0)

    def test_eviction_works_across_nodes(self):
        cluster = make_cluster(3, capacity=32)
        run = cluster.engine.run_process
        client = cluster.clients[0]
        for i in range(200):
            run(client.set(b"k%d" % i, b"v" * 40))
        assert cluster.budget.used_bytes <= cluster.budget.limit_bytes
        assert client.evictions > 0
