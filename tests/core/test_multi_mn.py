"""Tests for memory pools with multiple memory nodes (paper §5.1)."""

import pytest

from repro.core import DittoCluster, invariant_sweep
from repro.memory import MemoryNode, MemoryPool, StripedAllocator, Controller
from repro.rdma import RdmaEndpoint
from repro.sim import Engine
from repro.sim.faults import FaultPlan, NodeOutage


def make_cluster(nodes: int, capacity: int = 256, clients: int = 2):
    return DittoCluster(
        capacity_objects=capacity, object_bytes=64, num_clients=clients,
        seed=1, num_memory_nodes=nodes,
    )


class TestStripedAllocator:
    @pytest.fixture()
    def striped(self):
        engine = Engine()
        nodes = []
        base = 0
        for node_id in range(3):
            node = MemoryNode(engine, size=64 * 1024, base=base, node_id=node_id)
            Controller(node, cores=1)
            nodes.append(node)
            base += 64 * 1024
        ep = RdmaEndpoint(engine, MemoryPool(nodes))
        return engine, nodes, StripedAllocator(ep, nodes, segment_bytes=4096)

    def test_round_robin_across_nodes(self, striped):
        engine, nodes, allocator = striped
        owners = set()
        for _ in range(3):
            addr = engine.run_process(allocator.alloc(4096))
            owners.add(next(n.node_id for n in nodes if n.contains(addr)))
        assert owners == {0, 1, 2}

    def test_free_routes_by_address(self, striped):
        engine, nodes, allocator = striped
        a = engine.run_process(allocator.alloc(100))
        allocator.free(a, 100)
        assert allocator.free_blocks == 2
        b = engine.run_process(allocator.alloc(100))
        assert b == a

    def test_free_rejects_foreign_address(self, striped):
        _engine, _nodes, allocator = striped
        with pytest.raises(ValueError):
            allocator.free(10**9, 64)

    def test_falls_over_on_node_exhaustion(self, striped):
        engine, nodes, allocator = striped
        # Exhaust by allocating more than one node holds; allocation keeps
        # succeeding as long as any node has room.
        for _ in range(3 * 15):  # 45 x 4 KiB < 3 x 64 KiB
            engine.run_process(allocator.alloc(4096))

    def test_requires_nodes(self):
        engine = Engine()
        node = MemoryNode(engine, size=1024)
        ep = RdmaEndpoint(engine, MemoryPool([node]))
        with pytest.raises(ValueError):
            StripedAllocator(ep, [])


class TestMultiMnCluster:
    def test_cache_correct_with_three_nodes(self):
        cluster = make_cluster(3)
        run = cluster.engine.run_process
        client = cluster.clients[0]
        for i in range(300):
            run(client.set(b"k%d" % i, b"v%d" % i))
        hits = 0
        for i in range(300):
            value = run(client.get(b"k%d" % i))
            if value is not None:
                assert value == b"v%d" % i
                hits += 1
        assert hits > 0

    def test_objects_spread_across_node_nics(self):
        cluster = make_cluster(3)
        run = cluster.engine.run_process
        client = cluster.clients[0]
        for i in range(200):
            run(client.set(b"k%d" % i, b"v" * 40))
            run(client.get(b"k%d" % i))
        cluster.engine.run()
        data_messages = [node.nic.messages for node in cluster.nodes[1:]]
        assert all(m > 0 for m in data_messages)

    def test_index_structures_stay_on_node_zero(self):
        cluster = make_cluster(2)
        lay = cluster.layout
        assert cluster.nodes[0].contains(lay.history_counter_addr)
        assert cluster.nodes[0].contains(lay.table_addr, lay.table_bytes)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            make_cluster(0)

    def test_eviction_works_across_nodes(self):
        cluster = make_cluster(3, capacity=32)
        run = cluster.engine.run_process
        client = cluster.clients[0]
        for i in range(200):
            run(client.set(b"k%d" % i, b"v" * 40))
        assert cluster.budget.used_bytes <= cluster.budget.limit_bytes
        assert client.evictions > 0


class TestMnOutageAmongSeveral:
    """Fault interaction: one MN of several goes dark, the rest keep serving."""

    @staticmethod
    def _make(seed):
        return DittoCluster(
            capacity_objects=600, object_bytes=64, num_clients=2, seed=seed,
            num_memory_nodes=3, faults=FaultPlan(),
        )

    @staticmethod
    def _fill(cluster, n):
        run = cluster.engine.run_process
        values = {}
        for i in range(n):
            key, value = b"k%d" % i, bytes([i % 251]) * 48
            run(cluster.clients[i % 2].set(key, value))
            values[key] = value
        return values

    def test_outage_degrades_only_the_dark_nodes_objects(self):
        cluster = self._make(seed=3)
        values = self._fill(cluster, 300)
        run = cluster.engine.run_process
        cluster.fault_injector.load(
            FaultPlan(outages=(NodeOutage(2, 0.0, 50_000.0),)),
            offset_us=cluster.engine.now,
        )
        window_end = cluster.engine.now + 50_000.0
        hits = misses = 0
        for key, value in values.items():
            got = run(cluster.clients[0].get(key))
            if got is None:
                misses += 1  # object striped onto the dark node
            else:
                assert got == value
                hits += 1
        assert hits > 0, "objects on surviving nodes must keep hitting"
        assert misses > 0, "objects on the dark node must miss through"
        counters = cluster.counters.as_dict()
        assert counters["fault_node_unavailable"] > 0
        assert counters["fault_miss_through"] == misses
        assert cluster.engine.now < window_end, "probe outran the window"
        # Once the node returns, everything is readable again — the data
        # never left, no repair step needed.
        def wait():
            from repro.sim import Timeout
            yield Timeout(window_end - cluster.engine.now + 1_000.0)
        run(wait())
        for key, value in values.items():
            assert run(cluster.clients[0].get(key)) == value
        cluster.engine.run()
        invariant_sweep(cluster)

    def test_updates_during_outage_relocate_off_the_dark_node(self):
        cluster = self._make(seed=4)
        values = self._fill(cluster, 100)
        run = cluster.engine.run_process
        cluster.fault_injector.load(
            FaultPlan(outages=(NodeOutage(1, 0.0, 80_000.0),)),
            offset_us=cluster.engine.now,
        )
        window_end = cluster.engine.now + 80_000.0
        from repro.core import CacheOperationError
        updated = {}
        for key in values:
            fresh = b"u" * 48
            try:
                run(cluster.clients[1].set(key, fresh))
            except CacheOperationError:
                continue  # allocation retries exhausted on the dark node
            updated[key] = fresh
        assert updated, "updates must keep landing on surviving nodes"
        # An update writes a fresh block on a live node before CASing the
        # slot, so updated objects are readable *during* the outage.
        assert cluster.engine.now < window_end, "probe outran the window"
        for key, fresh in updated.items():
            assert run(cluster.clients[0].get(key)) == fresh
        def wait():
            from repro.sim import Timeout
            yield Timeout(window_end - cluster.engine.now + 1_000.0)
        run(wait())
        cluster.engine.run()
        # Nothing leaked or double-owned despite failed ops mid-outage.
        invariant_sweep(cluster)
        for key, value in values.items():
            assert run(cluster.clients[0].get(key)) == updated.get(key, value)
