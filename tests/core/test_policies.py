"""Unit tests for the 12 caching algorithms (priority-function framework)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Metadata, POLICY_REGISTRY, make_policy, policy_loc
from repro.core.policies import CachePolicy

ALL_POLICIES = sorted(POLICY_REGISTRY)


def meta(size=64, insert_ts=0, last_ts=0, freq=1, cost=1.0, ext=None):
    return Metadata(
        size=size, insert_ts=insert_ts, last_ts=last_ts, freq=freq, cost=cost,
        ext=dict(ext or {}),
    )


def victim(policy, metas, now=100):
    """Index of the metadata the policy would evict."""
    priorities = [policy.priority(m, now) for m in metas]
    return priorities.index(min(priorities))


class TestRegistry:
    def test_twelve_algorithms_registered(self):
        assert len(POLICY_REGISTRY) == 12
        expected = {
            "lru", "lfu", "mru", "gds", "lirs", "fifo",
            "size", "gdsf", "lrfu", "lruk", "lfuda", "hyperbolic",
        }
        assert set(POLICY_REGISTRY) == expected

    def test_make_policy_case_insensitive(self):
        assert make_policy("LRU").name == "lru"

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError, match="unknown policy"):
            make_policy("clairvoyant")

    @pytest.mark.parametrize("name", ALL_POLICIES)
    def test_every_policy_declares_info(self, name):
        policy = make_policy(name)
        assert isinstance(policy.info, tuple)
        assert policy.info, f"{name} must declare its access information"

    @pytest.mark.parametrize("name", ALL_POLICIES)
    def test_every_policy_computes_priority(self, name):
        policy = make_policy(name)
        m = meta()
        policy.on_insert(m, 0)
        policy.update(m, 50)
        assert isinstance(policy.priority(m, 100), (int, float))


class TestRecencyPolicies:
    def test_lru_evicts_least_recent(self):
        policy = make_policy("lru")
        metas = [meta(last_ts=30), meta(last_ts=10), meta(last_ts=20)]
        assert victim(policy, metas) == 1

    def test_mru_evicts_most_recent(self):
        policy = make_policy("mru")
        metas = [meta(last_ts=30), meta(last_ts=10), meta(last_ts=20)]
        assert victim(policy, metas) == 0

    def test_fifo_evicts_oldest_insert(self):
        policy = make_policy("fifo")
        metas = [meta(insert_ts=5, last_ts=99), meta(insert_ts=1, last_ts=100)]
        assert victim(policy, metas) == 1


class TestFrequencyPolicies:
    def test_lfu_evicts_least_frequent(self):
        policy = make_policy("lfu")
        metas = [meta(freq=10), meta(freq=2), meta(freq=5)]
        assert victim(policy, metas) == 1

    def test_lfuda_ages_via_inflation(self):
        policy = make_policy("lfuda")
        old_popular = meta(freq=10)
        policy.update(old_popular, 0)
        policy.on_evict(meta(freq=8, ext={"lfuda_h": 8.0}), 0)  # L becomes 8
        newcomer = meta(freq=1)
        policy.update(newcomer, 1)
        # newcomer H = 8 + 1 = 9 < old_popular H = 10 -> evicted first
        assert policy.priority(newcomer, 2) < policy.priority(old_popular, 2)


class TestSizeAwarePolicies:
    def test_size_evicts_largest(self):
        policy = make_policy("size")
        metas = [meta(size=64), meta(size=1024), meta(size=256)]
        assert victim(policy, metas) == 1

    def test_gds_prefers_small_cost_per_byte(self):
        policy = make_policy("gds")
        big, small = meta(size=1000), meta(size=10)
        policy.update(big, 0)
        policy.update(small, 0)
        assert victim(policy, [big, small]) == 0

    def test_gds_inflation_monotonic(self):
        policy = make_policy("gds")
        m = meta(size=10)
        policy.update(m, 0)
        assert policy.inflation == 0.0
        policy.on_evict(m, 0)
        assert policy.inflation == pytest.approx(0.1)
        policy.on_evict(meta(size=1000, ext={"gds_h": 0.001}), 0)
        assert policy.inflation == pytest.approx(0.1)  # never decreases

    def test_gdsf_weighs_frequency(self):
        policy = make_policy("gdsf")
        hot, cold = meta(size=100, freq=50), meta(size=100, freq=1)
        policy.update(hot, 0)
        policy.update(cold, 0)
        assert victim(policy, [hot, cold]) == 1

    def test_hyperbolic_hit_density(self):
        policy = make_policy("hyperbolic")
        dense = meta(freq=100, insert_ts=0, size=1)
        sparse = meta(freq=1, insert_ts=0, size=1)
        assert victim(policy, [dense, sparse], now=100) == 1

    def test_hyperbolic_penalizes_large_objects(self):
        policy = make_policy("hyperbolic")
        small = meta(freq=10, insert_ts=0, size=1)
        large = meta(freq=10, insert_ts=0, size=100)
        assert victim(policy, [small, large], now=100) == 1


class TestLRUK:
    def test_matches_paper_listing(self):
        """Reproduce Listing 1: ring buffer of K timestamps."""
        policy = make_policy("lruk", k=2)
        m = meta(insert_ts=0, freq=0)
        # fewer than K accesses -> FIFO on insert_ts
        m.freq = 1
        policy.update(m, 10)
        assert policy.priority(m, 11) == m.insert_ts
        # second access at t=20: K-th most recent access is t=10
        m.freq = 2
        policy.update(m, 20)
        assert policy.priority(m, 21) == 10

    def test_prefers_evicting_single_access_objects(self):
        policy = make_policy("lruk", k=2)
        once = meta(insert_ts=5, freq=1)
        policy.update(once, 50)
        twice = meta(insert_ts=6, freq=2)
        twice.ext["lruk_ts0"] = 40
        twice.ext["lruk_ts1"] = 60
        assert victim(policy, [once, twice], now=100) == 0


class TestLRFU:
    def test_crf_grows_with_hits(self):
        policy = make_policy("lrfu", decay_half_life=100.0)
        m = meta(last_ts=0)
        policy.update(m, 0)
        one_hit = policy.priority(m, 0)
        m.last_ts = 0
        policy.update(m, 0)
        assert policy.priority(m, 0) > one_hit

    def test_crf_decays_over_time(self):
        policy = make_policy("lrfu", decay_half_life=10.0)
        m = meta(last_ts=0)
        policy.update(m, 0)
        now_value = policy.priority(m, 0)
        later_value = policy.priority(m, 100)
        assert later_value < now_value


class TestLIRS:
    def test_single_access_objects_evicted_first(self):
        policy = make_policy("lirs")
        once = meta(freq=1)
        policy.update(once, 10)
        hot = meta(freq=3, last_ts=90)
        policy.update(hot, 100)
        assert victim(policy, [hot, once], now=100) == 1

    def test_larger_irr_evicted_earlier(self):
        policy = make_policy("lirs")
        tight = meta(freq=2, last_ts=95)
        policy.update(tight, 100)  # IRR 5
        loose = meta(freq=2, last_ts=10)
        policy.update(loose, 100)  # IRR 90
        assert victim(policy, [tight, loose], now=100) == 1


class TestPolicyLoc:
    def test_loc_counts_are_small(self):
        """Table 3: every algorithm integrates in a few lines of code."""
        for name in ALL_POLICIES:
            loc = policy_loc(make_policy(name))
            assert 1 <= loc <= 30, f"{name}: {loc} LOC"

    def test_base_policy_loc_is_zero(self):
        assert policy_loc(CachePolicy()) == 0


class TestMetadata:
    def test_defaults(self):
        m = Metadata()
        assert m.freq == 0 and m.ext == {}

    def test_table1_fields_present(self):
        m = Metadata()
        for field in ("size", "insert_ts", "last_ts", "freq", "latency", "cost"):
            assert hasattr(m, field)

    @given(
        st.integers(1, 10_000),
        st.integers(0, 1_000_000),
        st.integers(0, 100),
    )
    def test_lru_priority_equals_last_ts(self, size, last_ts, freq):
        policy = make_policy("lru")
        assert policy.priority(meta(size=size, last_ts=last_ts, freq=freq), 0) == last_ts
