"""Unit tests for the shared backoff schedule (repro.core.retry)."""

import random

import pytest

from repro.core.retry import backoff_us


def test_disabled_base_returns_zero_without_rng():
    assert backoff_us(1, base=0.0) == 0.0
    assert backoff_us(5, base=-1.0, ceiling=100.0, jitter=0.5) == 0.0


def test_exponential_doubling():
    assert backoff_us(1, base=20.0) == 20.0
    assert backoff_us(2, base=20.0) == 40.0
    assert backoff_us(5, base=20.0) == 320.0


def test_ceiling_clamps():
    assert backoff_us(10, base=20.0, ceiling=2_000.0) == 2_000.0
    # A ceiling of 0 means "no ceiling".
    assert backoff_us(10, base=20.0, ceiling=0.0) == 20.0 * 2**9


def test_jitter_draws_exactly_once():
    rng = random.Random(42)
    expected_factor = 1.0 + 0.5 * random.Random(42).random()
    delay = backoff_us(1, base=20.0, jitter=0.5, rng=rng)
    assert delay == pytest.approx(20.0 * expected_factor)
    # Exactly one draw consumed: the rng's next value is a fresh seed's second.
    fresh = random.Random(42)
    fresh.random()
    assert rng.random() == fresh.random()


def test_jitter_requires_rng():
    with pytest.raises(ValueError):
        backoff_us(1, base=20.0, jitter=0.5)


def test_no_jitter_leaves_rng_untouched():
    rng = random.Random(7)
    backoff_us(3, base=20.0, ceiling=2_000.0, jitter=0.0, rng=rng)
    assert rng.random() == random.Random(7).random()


def test_matches_client_backoff_formula():
    """The helper reproduces DittoClient._backoff_us byte-for-byte."""
    base, ceiling, jitter = 20.0, 2_000.0, 0.5
    for attempt in range(1, 12):
        rng_a = random.Random(99)
        rng_b = random.Random(99)
        delay = base * (2 ** (attempt - 1))
        if ceiling > 0.0 and delay > ceiling:
            delay = ceiling
        delay *= 1.0 + jitter * rng_a.random()
        assert backoff_us(
            attempt, base=base, ceiling=ceiling, jitter=jitter, rng=rng_b
        ) == pytest.approx(delay)
