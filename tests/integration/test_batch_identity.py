"""End-to-end identity: batched fast paths vs ``REPRO_VECTORIZE=0``.

The storm-mode engine and the vectorized cachesim replay are optimizations,
so whole experiments must produce byte-identical results with the fast
paths enabled (default) and force-disabled.  Two representative
experiments: fig02 (timed tier, verb storms through the full cluster) and
the extra fault-recovery experiment (fault plans must pin the engine to the
scalar loop anyway — disabling batching twice must change nothing).
"""

import json

from repro.bench.experiments import extra_fault_recovery, fig02_caching_structure_cost
from repro.bench.parallel import jsonify


def canonical(result) -> str:
    return json.dumps(jsonify(result), sort_keys=True)


def run_both(monkeypatch, run, **params):
    monkeypatch.delenv("REPRO_VECTORIZE", raising=False)
    fast = canonical(run(**params))
    monkeypatch.setenv("REPRO_VECTORIZE", "0")
    scalar = canonical(run(**params))
    return fast, scalar


def test_fig02_identical_with_and_without_batching(monkeypatch):
    fast, scalar = run_both(
        monkeypatch, fig02_caching_structure_cost.run,
        n_keys=500, client_counts=(1, 4), window_us=2000.0)
    assert fast == scalar


def test_fault_recovery_identical_with_and_without_batching(monkeypatch):
    fast, scalar = run_both(
        monkeypatch, extra_fault_recovery.run,
        n_keys=500, num_clients=2, phase_us=5000.0, window_us=1000.0,
        requests_per_client=800)
    assert fast == scalar
