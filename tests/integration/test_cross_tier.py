"""Cross-tier integration: the byte-level DM cache and the fast hit-rate
simulator must agree, and the systems must order as the paper claims."""

import numpy as np
import pytest

from repro.bench import Feed, Harness, pack_key, preload
from repro.bench.systems import build_cliquemap, build_ditto, build_shard_lru, run_ycsb_workload
from repro.cachesim import SampledAdaptiveCache
from repro.core import DittoCluster, DittoConfig
from repro.workloads import zipfian_trace


class TestTierAgreement:
    """Same trace, same capacity: DM-tier and cachesim hit rates must land
    close (they share policy code but differ in sampling randomness and
    byte-level effects)."""

    @pytest.mark.parametrize("policy", ["lru", "lfu", "fifo"])
    def test_single_policy_hit_rates_agree(self, policy):
        n_keys, capacity, n_req = 600, 128, 6_000
        trace = zipfian_trace(n_req, n_keys, theta=0.9, seed=3)

        sim = SampledAdaptiveCache(capacity, policies=(policy,), seed=5)
        for key in trace:
            sim.access(int(key))

        # use_fc=False: the FC cache intentionally lags remote frequency
        # counters, which the exact-frequency simulator does not model.
        cluster = DittoCluster(
            capacity_objects=capacity,
            object_bytes=40,
            num_clients=1,
            config=DittoConfig(policies=(policy,), use_fc=False),
            seed=5,
        )
        client = cluster.clients[0]
        run = cluster.engine.run_process
        value = b"v" * 20
        for key in trace:
            if run(client.get(b"%d" % key)) is None:
                run(client.set(b"%d" % key, value))
        dm_rate = cluster.hit_rate()
        assert dm_rate == pytest.approx(sim.hit_rate(), abs=0.08), (
            f"{policy}: DM {dm_rate:.3f} vs sim {sim.hit_rate():.3f}"
        )

    def test_adaptive_hit_rates_agree(self):
        n_keys, capacity, n_req = 600, 128, 6_000
        trace = zipfian_trace(n_req, n_keys, theta=0.9, seed=4)
        sim = SampledAdaptiveCache(capacity, policies=("lru", "lfu"), seed=5)
        for key in trace:
            sim.access(int(key))
        cluster = DittoCluster(
            capacity_objects=capacity, object_bytes=40, num_clients=1, seed=5,
        )
        client = cluster.clients[0]
        run = cluster.engine.run_process
        for key in trace:
            if run(client.get(b"%d" % key)) is None:
                run(client.set(b"%d" % key, b"v" * 20))
        assert cluster.hit_rate() == pytest.approx(sim.hit_rate(), abs=0.08)


    def test_fc_cache_costs_bounded_lfu_precision(self):
        """With the FC cache on, LFU decisions run on lagged counters; the
        paper's claim is that the threshold-10 lag costs little hit rate."""
        n_keys, capacity, n_req = 600, 128, 6_000
        trace = zipfian_trace(n_req, n_keys, theta=0.9, seed=3)
        sim = SampledAdaptiveCache(capacity, policies=("lfu",), seed=5)
        for key in trace:
            sim.access(int(key))
        cluster = DittoCluster(
            capacity_objects=capacity, object_bytes=40, num_clients=1,
            config=DittoConfig(policies=("lfu",)), seed=5,
        )
        client = cluster.clients[0]
        run = cluster.engine.run_process
        for key in trace:
            if run(client.get(b"%d" % key)) is None:
                run(client.set(b"%d" % key, b"v" * 20))
        assert cluster.hit_rate() > sim.hit_rate() - 0.15


class TestSystemOrdering:
    """The paper's qualitative throughput ordering at moderate scale."""

    def test_ditto_beats_baselines_on_ycsb_c(self):
        n_keys, clients = 2_000, 32
        results = {}
        for name, cluster in (
            ("ditto", build_ditto(2 * n_keys, clients)),
            ("shard-lru", build_shard_lru(4 * n_keys, clients)),
            ("cm-lru", build_cliquemap("lru", 2 * n_keys, clients)),
        ):
            measured = run_ycsb_workload(
                cluster, cluster.clients, "C", n_keys, window_us=5_000.0
            )
            results[name] = measured.throughput_mops
        assert results["ditto"] > results["cm-lru"]
        assert results["ditto"] > 2 * results["shard-lru"]

    def test_nic_saturation_flattens_scaling(self):
        n_keys = 2_000

        def tput(clients):
            cluster = build_ditto(2 * n_keys, clients)
            return run_ycsb_workload(
                cluster, cluster.clients, "C", n_keys, window_us=5_000.0
            ).throughput_mops

        low, mid, high = tput(4), tput(64), tput(128)
        assert mid > 3 * low  # scales while NIC has headroom
        assert high < mid * 1.3  # saturates at the NIC


class TestTimedAdaptivity:
    def test_weights_follow_workload_in_timed_mode(self):
        """Concurrent timed clients on an LFU-friendly mix shift global
        weights away from uniform."""
        n_keys, capacity = 2_000, 200
        cluster = build_ditto(capacity, 8, object_bytes=64)
        trace = zipfian_trace(40_000, n_keys, theta=1.1, seed=9)
        harness = Harness(cluster.engine, value_size=32, miss_penalty_us=50.0)
        shards = np.array_split(trace, 8)
        harness.launch_all(cluster.clients, [Feed.reads(s) for s in shards])
        harness.warm(30_000.0)
        harness.measure(100_000.0)
        regrets = sum(c.regrets for c in cluster.clients)
        assert regrets > 0
        weights = cluster.global_weights.weights
        assert weights != pytest.approx([0.5, 0.5], abs=1e-6)
