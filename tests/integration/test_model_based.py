"""Model-based testing: the byte-level DM systems vs an in-memory reference.

Random operation sequences run against both the system under test and a
plain dict model.  Without capacity pressure the cache must behave exactly
like the dict; under capacity pressure, any value returned must still be the
most recently written one (caches may forget, never corrupt).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DmKvsCluster, ShardLruCluster
from repro.core import DittoCluster, DittoConfig

KEYS = [b"key-%d" % i for i in range(12)]

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["get", "set", "delete"]),
        st.integers(0, len(KEYS) - 1),
        st.integers(0, 5),
    ),
    min_size=1,
    max_size=60,
)


def _value(key_index: int, version: int) -> bytes:
    return b"value-%d-%d" % (key_index, version) + b"." * (version * 7)


def _drive(run, client, model, operations, supports_delete=True):
    for op, key_index, version in operations:
        key = KEYS[key_index]
        if op == "set":
            run(client.set(key, _value(key_index, version)))
            model[key] = _value(key_index, version)
        elif op == "get":
            got = run(client.get(key))
            expected = model.get(key)
            assert got == expected, (op, key, got, expected)
        elif supports_delete and op == "delete":
            got = run(client.delete(key))
            assert got == (key in model)
            model.pop(key, None)


class TestDittoAgainstDict:
    @settings(max_examples=25, deadline=None)
    @given(ops_strategy)
    def test_uncontended_matches_dict(self, operations):
        cluster = DittoCluster(
            capacity_objects=64, object_bytes=64, num_clients=1, seed=2
        )
        _drive(cluster.engine.run_process, cluster.clients[0], {}, operations)

    @settings(max_examples=15, deadline=None)
    @given(ops_strategy)
    def test_values_never_corrupt_under_eviction(self, operations):
        """Tiny cache: keys may vanish, but present values must be current."""
        cluster = DittoCluster(
            capacity_objects=4, object_bytes=64, num_clients=1, seed=2
        )
        run = cluster.engine.run_process
        client = cluster.clients[0]
        model = {}
        for op, key_index, version in operations:
            key = KEYS[key_index]
            if op in ("set", "delete") and op == "set":
                run(client.set(key, _value(key_index, version)))
                model[key] = _value(key_index, version)
            elif op == "delete":
                run(client.delete(key))
                model.pop(key, None)
            else:
                got = run(client.get(key))
                if got is not None:
                    assert got == model.get(key)
        assert cluster.budget.used_bytes <= cluster.budget.limit_bytes

    @settings(max_examples=10, deadline=None)
    @given(ops_strategy, st.sampled_from(["lruk", "gdsf", "lrfu"]))
    def test_extension_policies_match_dict(self, operations, policy):
        cluster = DittoCluster(
            capacity_objects=64,
            object_bytes=64,
            num_clients=1,
            config=DittoConfig(policies=(policy,)),
            seed=2,
        )
        _drive(cluster.engine.run_process, cluster.clients[0], {}, operations)


class TestBaselinesAgainstDict:
    @settings(max_examples=15, deadline=None)
    @given(ops_strategy)
    def test_kvs_matches_dict(self, operations):
        cluster = DmKvsCluster(capacity_objects=64, num_clients=1, seed=2)
        _drive(
            cluster.engine.run_process,
            cluster.clients[0],
            {},
            operations,
            supports_delete=False,
        )

    @settings(max_examples=15, deadline=None)
    @given(ops_strategy)
    def test_shard_lru_matches_dict(self, operations):
        cluster = ShardLruCluster(
            capacity_objects=64, num_clients=1, shards=4, backoff_us=0.0, seed=2
        )
        _drive(
            cluster.engine.run_process,
            cluster.clients[0],
            {},
            operations,
            supports_delete=False,
        )
