"""Unit tests for client-side allocation and the memory budget."""

import pytest

from repro.memory import (
    BLOCK_SIZE,
    ClientAllocator,
    Controller,
    MemoryBudget,
    MemoryNode,
    MemoryPool,
)
from repro.rdma import RdmaEndpoint
from repro.sim import Engine


@pytest.fixture()
def alloc_setup():
    engine = Engine()
    node = MemoryNode(engine, size=1 << 20)
    Controller(node, cores=1, reserve=4096)
    ep = RdmaEndpoint(engine, MemoryPool([node]))
    allocator = ClientAllocator(ep, node, segment_bytes=4096)
    return engine, ep, allocator


def _alloc(engine, allocator, nbytes):
    def flow():
        addr = yield from allocator.alloc(nbytes)
        return addr

    return engine.run_process(flow())


class TestClientAllocator:
    def test_blocks_for(self):
        assert ClientAllocator.blocks_for(1) == 1
        assert ClientAllocator.blocks_for(64) == 1
        assert ClientAllocator.blocks_for(65) == 2
        assert ClientAllocator.blocks_for(0) == 1

    def test_block_aligned_addresses(self, alloc_setup):
        engine, _ep, allocator = alloc_setup
        a = _alloc(engine, allocator, 100)
        b = _alloc(engine, allocator, 100)
        assert b - a == 2 * BLOCK_SIZE

    def test_free_list_reuse(self, alloc_setup):
        engine, _ep, allocator = alloc_setup
        a = _alloc(engine, allocator, 100)
        allocator.free(a, 100)
        assert allocator.free_blocks == 2
        b = _alloc(engine, allocator, 100)
        assert b == a
        assert allocator.free_blocks == 0

    def test_different_size_classes_do_not_mix(self, alloc_setup):
        engine, _ep, allocator = alloc_setup
        a = _alloc(engine, allocator, 64)  # 1 block
        allocator.free(a, 64)
        b = _alloc(engine, allocator, 200)  # 4 blocks; must not reuse a
        assert b != a

    def test_segment_rpc_amortized(self, alloc_setup):
        engine, ep, allocator = alloc_setup
        for _ in range(64):  # 64 x 64B fills one 4 KiB segment exactly
            _alloc(engine, allocator, 64)
        assert ep.counters.get("rdma_rpc") == 1
        _alloc(engine, allocator, 64)
        assert ep.counters.get("rdma_rpc") == 2

    def test_oversized_allocation_gets_own_segment(self, alloc_setup):
        engine, _ep, allocator = alloc_setup
        addr = _alloc(engine, allocator, 8192)
        assert addr >= 4096

    def test_rejects_unaligned_segment_size(self, alloc_setup):
        engine, ep, allocator = alloc_setup
        with pytest.raises(ValueError):
            ClientAllocator(ep, allocator.node, segment_bytes=1000)


class TestMemoryBudget:
    def test_consume_and_release(self):
        budget = MemoryBudget(100)
        assert budget.try_consume(60)
        assert not budget.try_consume(50)
        budget.release(60)
        assert budget.try_consume(100)

    def test_release_too_much_raises(self):
        budget = MemoryBudget(100)
        with pytest.raises(RuntimeError):
            budget.release(1)

    def test_resize_shrink_leaves_overcommit(self):
        budget = MemoryBudget(100)
        budget.try_consume(80)
        budget.resize(50)
        assert budget.over_limit
        assert not budget.try_consume(1)
        budget.release(40)
        assert not budget.over_limit

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)
        with pytest.raises(ValueError):
            MemoryBudget(10).resize(0)
