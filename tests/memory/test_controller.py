"""Unit tests for the memory-node controller."""

import pytest

from repro.memory import Controller, MemoryNode, MemoryPool, OutOfMemoryError
from repro.rdma import RdmaEndpoint
from repro.sim import Engine


@pytest.fixture()
def setup():
    engine = Engine()
    node = MemoryNode(engine, size=64 * 1024)
    controller = Controller(node, cores=1, reserve=1024)
    ep = RdmaEndpoint(engine, MemoryPool([node]))
    return engine, node, controller, ep


def _rpc(engine, ep, node, op, payload):
    def flow():
        result = yield from ep.rpc(node, op, payload)
        return result

    return engine.run_process(flow())


class TestSegments:
    def test_alloc_respects_reserve(self, setup):
        engine, node, controller, ep = setup
        addr = _rpc(engine, ep, node, "alloc_segment", 4096)
        assert addr >= 1024

    def test_allocations_are_disjoint(self, setup):
        engine, node, controller, ep = setup
        a = _rpc(engine, ep, node, "alloc_segment", 4096)
        b = _rpc(engine, ep, node, "alloc_segment", 4096)
        assert abs(a - b) >= 4096

    def test_free_then_realloc_reuses(self, setup):
        engine, node, controller, ep = setup
        a = _rpc(engine, ep, node, "alloc_segment", 4096)
        _rpc(engine, ep, node, "free_segment", (a, 4096))
        b = _rpc(engine, ep, node, "alloc_segment", 4096)
        assert b == a

    def test_exhaustion_raises(self, setup):
        engine, node, controller, ep = setup
        with pytest.raises(OutOfMemoryError):
            _rpc(engine, ep, node, "alloc_segment", 1 << 20)

    def test_size_rounded_to_blocks(self, setup):
        engine, node, controller, ep = setup
        a = _rpc(engine, ep, node, "alloc_segment", 1)
        b = _rpc(engine, ep, node, "alloc_segment", 1)
        assert b - a == 64

    def test_bytes_remaining_accounts_freed(self, setup):
        engine, node, controller, ep = setup
        before = controller.bytes_remaining
        a = _rpc(engine, ep, node, "alloc_segment", 4096)
        assert controller.bytes_remaining == before - 4096
        _rpc(engine, ep, node, "free_segment", (a, 4096))
        assert controller.bytes_remaining == before


class TestHandlers:
    def test_unknown_op(self, setup):
        engine, node, controller, ep = setup
        with pytest.raises(KeyError, match="no RPC handler"):
            _rpc(engine, ep, node, "nope", None)

    def test_payload_dependent_cpu_cost(self, setup):
        engine, node, controller, ep = setup
        controller.register("work", lambda n: n, cpu_us=lambda n: float(n))
        t0 = engine.now
        _rpc(engine, ep, node, "work", 0)
        short = engine.now - t0
        t0 = engine.now
        _rpc(engine, ep, node, "work", 100)
        long = engine.now - t0
        assert long - short == pytest.approx(100.0)

    def test_single_core_serializes_rpcs(self, setup):
        engine, node, controller, ep = setup
        controller.register("slow", lambda _p: None, cpu_us=10.0)
        finish = []

        def client():
            local = RdmaEndpoint(engine, ep.pool)
            yield from local.rpc(node, "slow", None)
            finish.append(engine.now)

        for _ in range(3):
            engine.spawn(client())
        engine.run()
        gaps = [b - a for a, b in zip(finish, finish[1:])]
        assert all(gap >= 10.0 for gap in gaps)

    def test_more_cores_parallelize(self, setup):
        engine, node, controller, ep = setup
        controller.set_cores(4)
        controller.register("slow", lambda _p: None, cpu_us=10.0)
        finish = []

        def client():
            local = RdmaEndpoint(engine, ep.pool)
            yield from local.rpc(node, "slow", None)
            finish.append(engine.now)

        for _ in range(4):
            engine.spawn(client())
        engine.run()
        # all four served in parallel: spread well under serialized time
        assert max(finish) - min(finish) < 10.0

    def test_controller_attaches_to_node(self, setup):
        _engine, node, controller, _ep = setup
        assert node.controller is controller
        assert controller.cores == 1
