"""Unit tests for MemoryNode / MemoryPool raw semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import MemoryAccessError, MemoryNode, MemoryPool
from repro.sim import Engine


@pytest.fixture()
def node():
    return MemoryNode(Engine(), size=4096)


class TestMemoryNode:
    def test_zero_initialized(self, node):
        assert node.read_bytes(0, 16) == bytes(16)

    def test_write_read_roundtrip(self, node):
        node.write_bytes(10, b"hello")
        assert node.read_bytes(10, 5) == b"hello"

    def test_u64_roundtrip(self, node):
        node.write_u64(8, 0xDEADBEEF)
        assert node.read_u64(8) == 0xDEADBEEF

    def test_u64_masks_to_64_bits(self, node):
        node.write_u64(8, 1 << 65)
        assert node.read_u64(8) == 0

    def test_out_of_range_read_raises(self, node):
        with pytest.raises(MemoryAccessError):
            node.read_bytes(4090, 10)
        with pytest.raises(MemoryAccessError):
            node.read_bytes(-1, 1)

    def test_out_of_range_write_raises(self, node):
        with pytest.raises(MemoryAccessError):
            node.write_bytes(4095, b"ab")

    def test_cas_semantics(self, node):
        assert node.compare_and_swap(0, 0, 5) == 0
        assert node.read_u64(0) == 5
        assert node.compare_and_swap(0, 0, 9) == 5  # fails
        assert node.read_u64(0) == 5

    def test_faa_semantics(self, node):
        assert node.fetch_and_add(0, 10) == 0
        assert node.fetch_and_add(0, -3 & 0xFFFFFFFFFFFFFFFF) == 10

    def test_base_offset_addressing(self):
        node = MemoryNode(Engine(), size=1024, base=10_000)
        node.write_bytes(10_100, b"x")
        assert node.read_bytes(10_100, 1) == b"x"
        with pytest.raises(MemoryAccessError):
            node.read_bytes(100, 1)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            MemoryNode(Engine(), size=0)

    @given(st.integers(0, 4088), st.binary(min_size=1, max_size=8))
    def test_write_read_arbitrary(self, addr, data):
        node = MemoryNode(Engine(), size=4096)
        node.write_bytes(addr, data)
        assert node.read_bytes(addr, len(data)) == data


class TestMemoryPool:
    def test_total_size(self):
        engine = Engine()
        pool = MemoryPool(
            [MemoryNode(engine, 100, base=0), MemoryNode(engine, 200, base=100)]
        )
        assert pool.total_size == 300

    def test_overlapping_ranges_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError, match="overlap"):
            MemoryPool(
                [MemoryNode(engine, 100, base=0), MemoryNode(engine, 100, base=50)]
            )

    def test_node_for_routes_and_raises(self):
        engine = Engine()
        a = MemoryNode(engine, 100, base=0, node_id=0)
        b = MemoryNode(engine, 100, base=100, node_id=1)
        pool = MemoryPool([a, b])
        assert pool.node_for(50) is a
        assert pool.node_for(150) is b
        with pytest.raises(MemoryAccessError):
            pool.node_for(300)

    def test_straddling_access_rejected(self):
        engine = Engine()
        pool = MemoryPool(
            [MemoryNode(engine, 100, base=0), MemoryNode(engine, 100, base=100)]
        )
        with pytest.raises(MemoryAccessError):
            pool.node_for(95, 10)

    def test_add_checks_overlap(self):
        engine = Engine()
        pool = MemoryPool([MemoryNode(engine, 100, base=0)])
        with pytest.raises(ValueError):
            pool.add(MemoryNode(engine, 100, base=99))
