"""Unit tests for the metrics registry."""

import json

import pytest

from repro.obs import MetricsRegistry


class TestInstruments:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("ops", verb="get")
        b = reg.counter("ops", verb="get")
        assert a is b
        a.add()
        a.add(4)
        assert b.value == 5

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        get = reg.counter("ops", verb="get")
        set_ = reg.counter("ops", verb="set")
        get.add(1)
        set_.add(2)
        assert get.value == 1 and set_.value == 2

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.gauge("util", component="nic", node="0")
        b = reg.gauge("util", node="0", component="nic")
        assert a is b

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("weight")
        g.set(0.5)
        g.add(0.25)
        assert g.value == pytest.approx(0.75)

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", verb="get")
        for v in range(1, 1001):
            h.record(float(v))
        assert h.count == 1000
        assert h.percentile(50) == pytest.approx(500, rel=0.05)
        assert h.percentile(99) == pytest.approx(990, rel=0.05)

    def test_find_does_not_create(self):
        reg = MetricsRegistry()
        assert reg.find("counter", "missing") is None
        reg.counter("present")
        assert reg.find("counter", "present") is not None
        assert reg.snapshot()["counters"][0]["name"] == "present"


class TestSnapshot:
    def test_snapshot_is_json_safe_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b", x="2").add(2)
        reg.counter("b", x="1").add(1)
        reg.counter("a").add(9)
        reg.gauge("g").set(1.5)
        reg.histogram("h").record(3.0)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        names = [row["name"] for row in snap["counters"]]
        assert names == ["a", "b", "b"]
        assert snap["counters"][1]["labels"] == {"x": "1"}
        hist_row = snap["histograms"][0]
        assert hist_row["count"] == 1.0
        assert hist_row["p50"] == pytest.approx(3.0, rel=0.05)

    def test_snapshot_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("z", k="b").add(1)
            reg.counter("z", k="a").add(2)
            reg.histogram("h", k="x").record(1.0)
            return reg.snapshot()

        assert json.dumps(build(), sort_keys=True) == json.dumps(
            build(), sort_keys=True
        )
