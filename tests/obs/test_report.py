"""Trace analysis tests: aggregates, flamegraph folding, and the CLI."""

import json

import pytest

from repro.obs.report import (
    aggregate_spans,
    counter_summaries,
    flamegraph_folded,
    main,
    render_report,
)


def span(name, ts, dur, tid=1, pid=0):
    return {"ph": "X", "name": name, "cat": "t", "ts": ts, "dur": dur,
            "pid": pid, "tid": tid}


NESTED_DOC = {
    "traceEvents": [
        span("op.get", 0.0, 10.0),
        span("rdma.read", 1.0, 3.0),
        span("rdma.read", 5.0, 4.0),
        span("op.get", 20.0, 6.0),
        {"ph": "C", "name": "mn0.nic", "ts": 0.0, "pid": 0, "tid": 0,
         "args": {"inflight": 2, "queued": 0}},
        {"ph": "C", "name": "mn0.nic", "ts": 10.0, "pid": 0, "tid": 0,
         "args": {"inflight": 4, "queued": 1}},
    ]
}


class TestAggregate:
    def test_self_time_excludes_children(self):
        stats = aggregate_spans(NESTED_DOC)
        get = stats["op.get"]
        assert get["count"] == 2
        assert get["total_us"] == pytest.approx(16.0)
        # first op.get: 10 - (3 + 4) = 3 self; second has no children: 6
        assert get["self_us"] == pytest.approx(9.0)
        assert get["mean_us"] == pytest.approx(8.0)
        assert get["max_us"] == pytest.approx(10.0)
        read = stats["rdma.read"]
        assert read["count"] == 2
        assert read["self_us"] == pytest.approx(7.0)

    def test_lanes_aggregate_independently(self):
        doc = {"traceEvents": [span("a", 0, 10, tid=1), span("a", 0, 10, tid=2)]}
        stats = aggregate_spans(doc)
        # same ts on different lanes: neither nests inside the other
        assert stats["a"]["count"] == 2
        assert stats["a"]["self_us"] == pytest.approx(20.0)

    def test_empty_doc(self):
        assert aggregate_spans({"traceEvents": []}) == {}


class TestFlamegraph:
    def test_folded_paths_follow_nesting(self):
        lines = flamegraph_folded(NESTED_DOC)
        assert "op.get 9" in lines
        assert "op.get;rdma.read 7" in lines

    def test_zero_weight_frames_dropped(self):
        doc = {"traceEvents": [span("outer", 0, 4), span("inner", 0, 4)]}
        lines = flamegraph_folded(doc)
        # outer's entire duration is covered by inner: only the leaf shows
        assert lines == ["outer;inner 4"]


class TestCounters:
    def test_per_field_mean_and_max(self):
        summaries = counter_summaries(NESTED_DOC)
        nic = summaries["mn0.nic"]
        assert nic["inflight"] == {"mean": 3.0, "max": 4.0}
        assert nic["queued"] == {"mean": 0.5, "max": 1.0}

    def test_no_counters(self):
        assert counter_summaries({"traceEvents": [span("a", 0, 1)]}) == {}


class TestRender:
    def test_report_contains_spans_and_counters(self):
        text = render_report(NESTED_DOC)
        assert "op.get" in text and "rdma.read" in text
        assert "mn0.nic" in text and "inflight=3.00/4.00" in text

    def test_top_limits_rows(self):
        text = render_report(NESTED_DOC, top=1)
        # exactly header + 1 span row before the counter section
        span_rows = text.split("\n\n")[0].splitlines()
        assert len(span_rows) == 2


class TestCli:
    def _write(self, tmp_path, doc):
        path = tmp_path / "t.trace.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_report_mode(self, tmp_path, capsys):
        rc = main([self._write(tmp_path, NESTED_DOC)])
        assert rc == 0
        assert "op.get" in capsys.readouterr().out

    def test_validate_ok(self, tmp_path, capsys):
        rc = main([self._write(tmp_path, NESTED_DOC), "--validate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "valid" in out and "op.get" not in out

    def test_validate_bad_trace_fails(self, tmp_path, capsys):
        bad = {"traceEvents": [span("a", 0, 10), span("b", 5, 10)]}
        rc = main([self._write(tmp_path, bad), "--validate"])
        assert rc == 1
        assert "INVALID" in capsys.readouterr().err

    def test_flamegraph_output(self, tmp_path, capsys):
        out = tmp_path / "out.folded"
        rc = main([self._write(tmp_path, NESTED_DOC), "--flamegraph", str(out)])
        assert rc == 0
        lines = out.read_text().splitlines()
        assert "op.get;rdma.read 7" in lines
        assert "op.get" not in capsys.readouterr().out.splitlines()[0]

    def test_trace_and_merge_are_mutually_exclusive(self, tmp_path):
        path = self._write(tmp_path, NESTED_DOC)
        with pytest.raises(SystemExit):
            main([path, "--merge", str(tmp_path)])
        with pytest.raises(SystemExit):
            main([])


class TestMergeCli:
    """``--merge DIR`` over wall-clock shards from repro.obs.runtime."""

    def _populate(self, tmp_path):
        from repro.obs.runtime import ProcessObs

        launcher = ProcessObs(str(tmp_path), "launcher")
        with launcher.span("load", "phase"):
            pass
        launcher.flush()
        for node_id in range(2):
            proc = ProcessObs(
                str(tmp_path), f"mn{node_id}",
                common_epoch_s=launcher.t0_epoch_s,
            )
            lane = proc.lane("conn-0")
            start = proc.now_us()
            proc.tracer.complete("read", "verb", start, tid=lane)
            proc.flush()
        return launcher

    def test_merge_validate_and_output_file(self, tmp_path, capsys):
        self._populate(tmp_path)
        rc = main(["--merge", str(tmp_path), "--validate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "merged 3 shards" in out and "valid" in out
        merged = json.loads((tmp_path / "merged.trace.json").read_text())
        pids = {e["pid"] for e in merged["traceEvents"]}
        assert len(pids) == 3

    def test_merge_skips_partial_shard(self, tmp_path, capsys):
        self._populate(tmp_path)
        (tmp_path / "shard-mn9-999.json").write_text('{"traceEvents": [')
        rc = main(["--merge", str(tmp_path), "--validate"])
        assert rc == 0
        assert "skipped unreadable shard" in capsys.readouterr().err

    def test_merge_empty_dir_fails(self, tmp_path, capsys):
        rc = main(["--merge", str(tmp_path)])
        assert rc == 1
        assert "no shard" in capsys.readouterr().err

    def test_merge_out_override(self, tmp_path):
        self._populate(tmp_path)
        out = tmp_path / "elsewhere.json"
        rc = main(["--merge", str(tmp_path), "--out", str(out)])
        assert rc == 0
        assert json.loads(out.read_text())["traceEvents"]

    def test_per_node_flamegraphs(self, tmp_path, capsys):
        self._populate(tmp_path)
        flames = tmp_path / "flames"
        rc = main(["--merge", str(tmp_path),
                   "--per-node-flamegraphs", str(flames)])
        assert rc == 0
        files = sorted(p.name for p in flames.iterdir())
        assert len(files) == 3
        assert any("launcher" in name for name in files)
        assert any("mn0" in name for name in files)
        # each file is valid collapsed-stack input
        for name in files:
            for line in (flames / name).read_text().splitlines():
                stack, weight = line.rsplit(" ", 1)
                assert stack and int(weight) >= 0
