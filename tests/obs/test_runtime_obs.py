"""Unit tests for the wall-clock observability layer (repro.obs.runtime).

Covers the real-substrate failure shapes the merge must survive: shards
whose origins disagree (cross-process clock offsets), empty directories,
and the partial file a SIGKILL can leave outside the atomic-rename
window.  All tests run in one process with fabricated shards — the
multi-process path is exercised by tests/runtime/test_obs_runtime.py.
"""

import json
import os

import pytest

from repro.obs import runtime as obs_runtime
from repro.obs.metrics import render_prometheus
from repro.obs.runtime import (
    ProcessObs,
    WallTracer,
    build_digest,
    format_digest,
    load_shard,
    merge_shards,
    persist_digest,
    record_fault_windows,
)
from repro.obs.trace import FAULT_TID_BASE, validate_trace


@pytest.fixture(autouse=True)
def _isolated_obs(monkeypatch):
    """Each test starts disarmed with a clean environment."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_EPOCH", raising=False)
    obs_runtime._reset()
    yield
    obs_runtime._reset()


class TestWallTracer:
    def test_complete_records_lane_and_nonnegative_dur(self):
        tracer = WallTracer(label="t")
        start = tracer.now_us()
        tracer.complete("op", "cat", start, tid=3, args={"k": 1})
        (event,) = [e for e in tracer.chrome_events() if e["ph"] == "X"]
        assert event["tid"] == 3
        assert event["dur"] >= 0.0
        assert event["args"] == {"k": 1}

    def test_now_us_is_monotonic(self):
        tracer = WallTracer()
        a = tracer.now_us()
        b = tracer.now_us()
        assert b >= a

    def test_future_start_clamps_to_zero_dur(self):
        tracer = WallTracer()
        tracer.complete("op", "cat", tracer.now_us() + 1e9)
        (event,) = [e for e in tracer.chrome_events() if e["ph"] == "X"]
        assert event["dur"] == 0.0


class TestProcessObs:
    def test_lanes_are_sequential_and_named_lane_memoized(self, tmp_path):
        proc = ProcessObs(str(tmp_path), "mn0")
        a = proc.lane("conn-0")
        b = proc.lane("conn-1")
        assert b == a + 1
        h1 = proc.lane_named("harness")
        h2 = proc.lane_named("harness")
        assert h1 == h2
        assert proc.lane("conn-2") > h1

    def test_span_context_manager_records(self, tmp_path):
        proc = ProcessObs(str(tmp_path), "mn0")
        with proc.span("launch", "phase", tid=0, args={"nodes": 2}):
            pass
        spans = [e for e in proc.tracer.chrome_events() if e["ph"] == "X"]
        assert [s["name"] for s in spans] == ["launch"]

    def test_flush_is_atomic_and_idempotent(self, tmp_path):
        proc = ProcessObs(str(tmp_path), "mn0")
        with proc.span("a"):
            pass
        path = proc.flush()
        first = json.load(open(path))
        path2 = proc.flush()
        assert path2 == path
        assert json.load(open(path))["traceEvents"] == first["traceEvents"]
        # no temp droppings from the atomic rename
        assert all(
            not name.endswith(f".tmp.{proc.pid}")
            for name in os.listdir(tmp_path)
        )

    def test_shard_document_schema(self, tmp_path):
        proc = ProcessObs(str(tmp_path), "mn1", common_epoch_s=123.0)
        proc.registry.counter("verbs", verb="read").add(2)
        doc = proc.shard_document()
        assert doc["schema"] == obs_runtime.SHARD_SCHEMA
        assert doc["role"] == "mn1"
        assert doc["pid"] == os.getpid()
        assert doc["common_epoch_s"] == 123.0
        assert isinstance(doc["origin_epoch_s"], float)
        assert doc["metrics"]["counters"][0]["value"] == 2

    def test_role_is_sanitized_in_shard_path(self, tmp_path):
        proc = ProcessObs(str(tmp_path), "mn0/evil role")
        assert "/" not in os.path.basename(proc.shard_path())
        assert " " not in os.path.basename(proc.shard_path())

    def test_bridge_counters_fold_at_flush(self, tmp_path):
        class FakeCounters:
            def as_dict(self):
                return {"conn_resend": 4, "rdma_read": 9}

        proc = ProcessObs(str(tmp_path), "launcher")
        proc.bridge_counters(FakeCounters(), component="client")
        doc = proc.shard_document()
        rows = {
            (r["name"], tuple(sorted(r["labels"].items()))): r["value"]
            for r in doc["metrics"]["counters"]
        }
        assert rows[("conn_resend", (("component", "client"),))] == 4
        assert rows[("rdma_read", (("component", "client"),))] == 9


class FakePlan:
    def __init__(self, d):
        self._d = d

    def to_dict(self):
        return self._d


class TestFaultWindows:
    def test_windows_land_on_dedicated_lanes(self, tmp_path):
        proc = ProcessObs(str(tmp_path), "mn0")
        plan = FakePlan({
            "seed": 7,
            "drops": [{"node_id": 0, "start_us": 10.0, "end_us": 30.0}],
            "outages": [{"node_id": 1, "start_us": 5.0, "end_us": 50.0}],
            "spikes": [{"node_id": 0, "extra_us": 3.0}],  # no window
        })
        n = record_fault_windows(proc, plan, proc.t0_epoch_s)
        assert n == 2
        spans = [e for e in proc.tracer.chrome_events() if e["ph"] == "X"]
        assert {s["name"] for s in spans} == {"fault.drop", "fault.outage"}
        tids = {s["tid"] for s in spans}
        assert len(tids) == 2 and all(t >= FAULT_TID_BASE for t in tids)


class TestShardMerge:
    def _shard(self, tmp_path, role, origin, common=None, events=(),
               pid=100):
        doc = {
            "schema": 1, "role": role, "pid": pid,
            "origin_epoch_s": origin, "common_epoch_s": common,
            "clock": "wall-us", "traceEvents": list(events),
            "dropped": 0, "metrics": {},
        }
        path = tmp_path / f"shard-{role}-{pid}.json"
        path.write_text(json.dumps(doc))
        return path

    def test_empty_directory(self, tmp_path):
        doc, info = merge_shards(str(tmp_path))
        assert doc["traceEvents"] == []
        assert info["shards"] == [] and info["skipped"] == []

    def test_partial_shard_is_skipped_not_fatal(self, tmp_path):
        self._shard(tmp_path, "mn0", 100.0, events=[
            {"ph": "X", "name": "a", "cat": "t", "ts": 0.0, "dur": 1.0,
             "pid": 0, "tid": 0},
        ])
        (tmp_path / "shard-mn1-200.json").write_text('{"traceEvents": [')
        doc, info = merge_shards(str(tmp_path))
        assert len(info["shards"]) == 1
        assert info["skipped"] == ["shard-mn1-200.json"]
        assert validate_trace(doc) == []

    def test_common_epoch_aligns_skewed_origins(self, tmp_path):
        # Two processes started 2s apart; both know the launch epoch.
        span = {"ph": "X", "name": "op", "cat": "t", "ts": 10.0,
                "dur": 5.0, "pid": 0, "tid": 1}
        self._shard(tmp_path, "launcher", 100.0, common=100.0,
                    events=[span], pid=1)
        self._shard(tmp_path, "mn0", 102.0, common=100.0,
                    events=[span], pid=2)
        doc, info = merge_shards(str(tmp_path))
        by_pid = {e["pid"]: e for e in doc["traceEvents"]
                  if e.get("ph") == "X"}
        # launcher shard: offset 0; mn0 shard: +2s in µs
        assert by_pid[0]["ts"] == pytest.approx(10.0)
        assert by_pid[1]["ts"] == pytest.approx(10.0 + 2e6)
        assert doc["otherData"]["epoch_origin_s"] == 100.0

    def test_fallback_to_min_origin_without_common_epoch(self, tmp_path):
        span = {"ph": "X", "name": "op", "cat": "t", "ts": 0.0,
                "dur": 1.0, "pid": 0, "tid": 1}
        self._shard(tmp_path, "mn0", 105.0, events=[span], pid=1)
        self._shard(tmp_path, "mn1", 101.0, events=[span], pid=2)
        doc, _info = merge_shards(str(tmp_path))
        starts = sorted(
            e["ts"] for e in doc["traceEvents"] if e.get("ph") == "X"
        )
        assert starts[0] == pytest.approx(0.0)       # earliest shard
        assert starts[1] == pytest.approx(4e6)       # +4s later start

    def test_nonmonotonic_cross_process_timestamps_still_validate(
        self, tmp_path
    ):
        # mn1 started first but its shard sorts later: events whose raw ts
        # run "backwards" across shards must still merge into a trace the
        # validator accepts (lanes are per-pid, so cross-pid order is free).
        self._shard(tmp_path, "mn0", 200.0, events=[
            {"ph": "X", "name": "late", "cat": "t", "ts": 0.0, "dur": 2.0,
             "pid": 0, "tid": 1},
        ], pid=1)
        self._shard(tmp_path, "mn1", 100.0, events=[
            {"ph": "X", "name": "early", "cat": "t", "ts": 50.0, "dur": 2.0,
             "pid": 0, "tid": 1},
        ], pid=2)
        doc, _info = merge_shards(str(tmp_path))
        assert validate_trace(doc) == []
        pids = {e["pid"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert pids == {0, 1}

    def test_merged_pids_are_deterministic(self, tmp_path):
        self._shard(tmp_path, "mn1", 100.0, pid=9)
        self._shard(tmp_path, "mn0", 100.0, pid=5)
        self._shard(tmp_path, "launcher", 100.0, pid=7)
        _doc, info = merge_shards(str(tmp_path))
        assert [s["role"] for s in info["shards"]] == [
            "launcher", "mn0", "mn1"
        ]
        assert [s["merged_pid"] for s in info["shards"]] == [0, 1, 2]

    def test_process_names_carry_role_and_original_pid(self, tmp_path):
        proc = ProcessObs(str(tmp_path), "mn0")
        with proc.span("a"):
            pass
        proc.flush()
        doc, _info = merge_shards(str(tmp_path))
        names = [
            e["args"]["name"] for e in doc["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
        ]
        assert any("mn0" in n and str(proc.pid) in n for n in names)

    def test_load_shard_rejects_foreign_files(self, tmp_path):
        good = self._shard(tmp_path, "mn0", 100.0)
        assert load_shard(str(good)) is not None
        bad = tmp_path / "shard-x-1.json"
        for payload in ('{"trunc', "[1,2,3]", '{"traceEvents": {}}',
                        '{"traceEvents": [], "origin_epoch_s": "nope"}'):
            bad.write_text(payload)
            assert load_shard(str(bad)) is None


class TestDigest:
    REPORT = {
        "ops": 5000, "failed_ops": 3, "ops_per_s": 2400.0,
        "get_p50_us": 80.0, "get_p99_us": 950.0,
        "set_p50_us": 95.0, "set_p99_us": 1100.0,
        "counters": {"conn_resend": 12, "breaker_trip": 1, "rdma_read": 99},
        "chaos": {
            "verdicts": {"ok": 4800, "drop": 120, "down": 60, "spike": 20},
            "adopted_grants": 5, "repaired_slots": 2,
            "sweep": {"clean": True}, "killed_at_s": 0.5,
            "restarted_at_s": 0.9,
        },
    }

    def test_build_digest_shapes(self):
        digest = build_digest(self.REPORT)
        assert digest["latency_us"]["get"] == {"p50": 80.0, "p99": 950.0}
        assert digest["retries"]["conn_resend"] == 12
        assert digest["retries"]["breaker_trip"] == 1
        assert "rdma_read" not in digest["retries"]
        assert digest["chaos"]["verdicts"]["drop"] == 120

    def test_build_digest_without_chaos_section(self):
        report = {k: v for k, v in self.REPORT.items() if k != "chaos"}
        digest = build_digest(report)
        assert "chaos" not in digest

    def test_format_digest_readable(self):
        text = format_digest(build_digest(self.REPORT))
        assert "ops=5000" in text
        assert "get  p50=80.0" in text
        assert "conn_resend" in text and "rdma_read" not in text
        assert "drop" in text

    def test_persist_digest_round_trips(self, tmp_path):
        path = str(tmp_path / "digest.json")
        persist_digest(build_digest(self.REPORT), path)
        assert json.load(open(path))["ops"] == 5000


class TestPrometheus:
    def test_render_counters_gauges_histograms(self, tmp_path):
        proc = ProcessObs(str(tmp_path), "mn0")
        proc.registry.counter("verbs", verb="read").add(7)
        proc.registry.gauge("inflight").set(3)
        hist = proc.registry.histogram("verb.service_us", verb="read")
        for value in (10.0, 20.0, 30.0):
            hist.record(value)
        text = render_prometheus(
            proc.registry.snapshot(), {"node": "mn0"}
        )
        assert "# TYPE verbs_total counter" in text
        assert 'verbs_total{node="mn0",verb="read"} 7' in text
        assert 'inflight{node="mn0"} 3' in text
        assert 'verb_service_us{' in text and 'quantile="0.99"' in text
        assert "verb_service_us_count" in text
        assert "verb_service_us_sum" in text

    def test_label_values_escaped(self):
        snapshot = {
            "counters": [
                {"name": "c", "labels": {"k": 'a"b\\c'}, "value": 1}
            ],
            "gauges": [], "histograms": [],
        }
        text = render_prometheus(snapshot)
        assert 'k="a\\"b\\\\c"' in text


class TestRuntimeGating:
    def test_disarmed_without_env(self):
        assert obs_runtime.init() is None
        assert obs_runtime.current() is None

    def test_maybe_span_is_passthrough_when_disarmed(self):
        with obs_runtime.maybe_span("x") as proc:
            assert proc is None

    def test_init_publishes_epoch_for_children(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path))
        proc = obs_runtime.init("launcher")
        assert proc is not None
        assert proc.common_epoch_s == proc.t0_epoch_s
        assert float(os.environ["REPRO_TRACE_EPOCH"]) == proc.t0_epoch_s
        # idempotent: second init returns the same hub
        assert obs_runtime.init("other") is proc

    def test_child_inherits_common_epoch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_EPOCH", "123.5")
        proc = obs_runtime.init("mn0")
        assert proc.common_epoch_s == 123.5

    def test_maybe_span_uses_named_lane(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path))
        proc = obs_runtime.init("launcher")
        with obs_runtime.maybe_span("harness.kill", lane="harness"):
            pass
        with obs_runtime.maybe_span("harness.restart", lane="harness"):
            pass
        spans = [e for e in proc.tracer.chrome_events() if e["ph"] == "X"]
        assert len({s["tid"] for s in spans}) == 1
        assert spans[0]["tid"] != 0

    def test_event_budget_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_EVENTS", "2")
        proc = obs_runtime.init("mn0")
        for i in range(5):
            proc.tracer.complete(f"s{i}", "t", proc.now_us())
        assert proc.tracer.dropped == 3
