"""Rendering tests for ``repro.obs.top`` (no live cluster required).

The live polling path — real ``__stats__`` RPCs against spawned node
processes — is covered by tests/runtime/test_obs_runtime.py; here we
fabricate ``__stats__`` payloads and check the table math: first-poll
absolute totals, delta rates on later polls, DOWN rows, and the dark-node
hint.
"""

import json

from repro.obs.top import _verb_counts, _verb_latency, main, render_table

NODES = [
    {"node_id": 0, "host": "127.0.0.1", "port": 1},
    {"node_id": 1, "host": "127.0.0.1", "port": 2},
]


def stats(ops=100, reads=80, writes=20, pid=42, armed=True,
          verdicts=None, read_p50=50.0, read_p99=200.0):
    metrics = None
    if armed:
        metrics = {
            "counters": [
                {"name": "verbs", "labels": {"verb": "read"},
                 "value": reads},
                {"name": "verbs", "labels": {"verb": "write"},
                 "value": writes},
            ],
            "gauges": [],
            "histograms": [
                {"name": "verb.service_us", "labels": {"verb": "read"},
                 "count": reads, "p50": read_p50, "p90": 150.0,
                 "p99": read_p99, "mean": 60.0, "max": 300.0},
            ],
        }
    return {
        "node_id": 0, "role": "mn0", "pid": pid, "uptime_s": 12.5,
        "ops_served": ops, "connections": 4, "inflight_delayed": 0,
        "journal_entries": 3, "grants": 1, "chaos_armed": False,
        "chaos_verdicts": verdicts or {}, "obs_armed": armed,
        "metrics": metrics,
    }


class TestParsers:
    def test_verb_counts_and_latency(self):
        payload = stats()
        assert _verb_counts(payload) == {"read": 80, "write": 20}
        assert _verb_latency(payload)["read"]["p99"] == 200.0

    def test_none_and_dark_payloads(self):
        assert _verb_counts(None) == {}
        assert _verb_latency(stats(armed=False)) == {}


class TestRenderTable:
    def test_first_poll_marks_absolute_totals(self):
        text = render_table(NODES[:1], [stats()], [None], interval_s=1.0)
        assert "Σ100" in text          # ops column: absolute, marked
        assert "Σ80" in text           # read verb row
        assert "write" in text

    def test_second_poll_shows_deltas(self):
        prev = [stats(ops=100, reads=80, writes=20)]
        now = [stats(ops=160, reads=130, writes=30)]
        text = render_table(NODES[:1], now, prev, interval_s=2.0)
        assert "Σ" not in text
        assert " 30 " in text          # (160-100)/2 ops/s
        assert " 25 " in text          # (130-80)/2 read rate

    def test_down_node_row(self):
        text = render_table(NODES, [stats(), None], [None, None], 1.0)
        assert "DOWN" in text

    def test_dark_node_hint(self):
        text = render_table(
            NODES[:1], [stats(armed=False)], [None], 1.0
        )
        assert "--arm" in text

    def test_gate_verdicts_column(self):
        payload = stats(verdicts={"ok": 90, "drop": 7, "down": 3,
                                  "spike": 0})
        text = render_table(NODES[:1], [payload], [None], 1.0)
        assert "drop=7" in text and "spike" not in text

    def test_latency_columns_from_histogram(self):
        text = render_table(
            NODES[:1], [stats(read_p50=55.0, read_p99=210.0)], [None], 1.0
        )
        assert "55" in text and "210" in text


class TestCli:
    def test_empty_descriptor_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "d.json"
        path.write_text(json.dumps({"nodes": []}))
        assert main(["--descriptor", str(path), "--count", "1"]) == 2
        assert "no nodes" in capsys.readouterr().err

    def test_all_nodes_unreachable_exits_nonzero(self, tmp_path, capsys):
        # port 1 on loopback: connection refused, fetch_stats returns None
        path = tmp_path / "d.json"
        path.write_text(json.dumps({"nodes": NODES}))
        rc = main(["--descriptor", str(path), "--count", "1",
                   "--timeout", "0.2"])
        assert rc == 1
        assert "no node reachable" in capsys.readouterr().err
