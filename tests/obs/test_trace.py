"""Trace export: schema validity, span nesting, and hot-path inertness."""

import json

import pytest

from repro.core.cache import DittoCache
from repro.obs import (
    FAULT_TID_BASE,
    Observability,
    SpanTracer,
    activate,
    chrome_document,
    current,
    deactivate,
    validate_trace,
)
from repro.sim import Engine, Timeout


@pytest.fixture(autouse=True)
def _clean_runtime():
    deactivate()
    yield
    deactivate()


def run_cache_ops(n=150):
    cache = DittoCache(capacity_objects=128, num_clients=2, seed=7)
    for i in range(n):
        cache.set(f"key-{i % 64}", b"v" * 48)
        cache.get(f"key-{i % 96}")
    return cache


class TestSpanTracer:
    def test_spans_land_on_process_lanes(self):
        engine = Engine()
        tracer = SpanTracer(engine, pid=3, label="test")

        def worker():
            t0 = engine.now
            yield Timeout(5.0)
            tracer.complete("work", "test", t0, {"n": 1})

        engine.run_process(worker(), name="w1")
        events = list(tracer.chrome_events())
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 1
        span = spans[0]
        assert span["pid"] == 3 and span["tid"] >= 1
        assert span["ts"] == 0.0 and span["dur"] == 5.0
        assert span["args"] == {"n": 1}
        lanes = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert lanes[span["tid"]] == "w1"

    def test_outside_process_is_lane_zero(self):
        engine = Engine()
        tracer = SpanTracer(engine)
        tracer.instant("marker", "test")
        event = [e for e in tracer.chrome_events() if e["ph"] == "i"][0]
        assert event["tid"] == 0
        assert event["s"] == "t"

    def test_max_events_cap_counts_drops(self):
        engine = Engine()
        tracer = SpanTracer(engine, max_events=2)
        for _ in range(5):
            tracer.instant("x", "t")
        assert len(tracer.events) == 2
        assert tracer.dropped == 3


class TestValidate:
    def test_accepts_nested_spans(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "outer", "ts": 0, "dur": 10, "pid": 0, "tid": 1},
            {"ph": "X", "name": "inner", "ts": 2, "dur": 3, "pid": 0, "tid": 1},
            {"ph": "X", "name": "after", "ts": 6, "dur": 4, "pid": 0, "tid": 1},
        ]}
        assert validate_trace(doc) == []

    def test_rejects_partial_overlap(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "a", "ts": 0, "dur": 10, "pid": 0, "tid": 1},
            {"ph": "X", "name": "b", "ts": 5, "dur": 10, "pid": 0, "tid": 1},
        ]}
        problems = validate_trace(doc)
        assert len(problems) == 1 and "without nesting" in problems[0]

    def test_overlap_on_other_lane_is_fine(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "a", "ts": 0, "dur": 10, "pid": 0, "tid": 1},
            {"ph": "X", "name": "b", "ts": 5, "dur": 10, "pid": 0, "tid": 2},
        ]}
        assert validate_trace(doc) == []

    def test_rejects_missing_fields_and_bad_dur(self):
        doc = {"traceEvents": [
            {"ph": "X", "ts": 0, "pid": 0, "tid": 1},            # no name
            {"ph": "X", "name": "n", "ts": 0, "pid": 0, "tid": 1},  # no dur
        ]}
        assert len(validate_trace(doc)) == 2

    def test_rejects_non_list(self):
        assert validate_trace({}) == ["traceEvents missing or not a list"]


class TestClusterTracing:
    def test_trace_is_valid_and_loadable(self, tmp_path):
        obs = activate(Observability())
        cache = run_cache_ops()
        deactivate()
        doc = obs.chrome_document()
        assert validate_trace(doc) == []
        # round-trip through JSON exactly as chrome://tracing would load it
        path = tmp_path / "t.trace.json"
        obs.export_chrome(path)
        loaded = json.loads(path.read_text())
        assert validate_trace(loaded) == []
        assert loaded["displayTimeUnit"] == "ms"
        names = {e["name"] for e in loaded["traceEvents"]}
        assert {"op.get", "op.set", "rdma.read", "rdma.cas"} <= names
        assert cache.stats()["hits"] > 0

    def test_rpc_spans_nest_inside_verbs(self):
        obs = activate(Observability())
        run_cache_ops(40)
        deactivate()
        doc = obs.chrome_document()
        by_name = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                by_name.setdefault(e["name"], []).append(e)
        # every controller RPC span is contained in some rdma.rpc span
        for rpc in by_name.get("rpc.alloc_segment", []):
            assert any(
                outer["ts"] <= rpc["ts"]
                and rpc["ts"] + rpc["dur"] <= outer["ts"] + outer["dur"] + 1e-6
                and outer["tid"] == rpc["tid"]
                for outer in by_name["rdma.rpc"]
            )

    def test_inert_without_hub(self):
        assert current() is None
        cache = run_cache_ops(30)
        assert cache.cluster.tracer is None
        assert cache.cluster.obs is None
        assert cache.cluster.clients[0].ep.tracer is None
        assert cache.cluster.controller.tracer is None

    def test_same_results_with_and_without_obs(self):
        plain = run_cache_ops().stats()
        activate(Observability())
        traced = run_cache_ops().stats()
        deactivate()
        assert plain == traced

    def test_fault_windows_get_own_lanes(self):
        from repro.core.cache import DittoCluster
        from repro.sim.faults import DropWindow, FaultPlan

        obs = activate(Observability())
        plan = FaultPlan(
            drops=(DropWindow(0.0, 50.0), DropWindow(25.0, 80.0)),
        )
        DittoCluster(capacity_objects=64, num_clients=1, faults=plan)
        deactivate()
        doc = obs.chrome_document()
        assert validate_trace(doc) == []
        fault_spans = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "fault.drop"
        ]
        assert len(fault_spans) == 2
        tids = {e["tid"] for e in fault_spans}
        assert len(tids) == 2 and all(t >= FAULT_TID_BASE for t in tids)


class TestObservabilityHub:
    def test_bind_reuses_tracer_per_engine(self):
        obs = Observability()
        e1, e2 = Engine(), Engine()
        t1 = obs.bind(e1, "a")
        assert obs.bind(e1, "a") is t1
        t2 = obs.bind(e2, "b")
        assert t2.pid != t1.pid
        assert obs.tracer_for(e2) is t2
        assert obs.tracer_for(Engine()) is None

    def test_tracing_off_binds_none(self):
        obs = Observability(tracing=False)
        assert obs.bind(Engine(), "x") is None

    def test_env_activation(self, monkeypatch, tmp_path):
        import repro.obs.observer as observer

        monkeypatch.setattr(observer, "_current", None)
        monkeypatch.setattr(observer, "_env_checked", False)
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "tr"))
        obs = observer.current()
        assert obs is not None
        assert observer.current() is obs
        observer.deactivate()
        monkeypatch.setattr(observer, "_env_checked", False)
        monkeypatch.delenv("REPRO_TRACE")
        assert observer.current() is None
