"""Doorbell-batched verb trains: ``RateLimiter.book_burst`` / ``read_burst``.

A burst of N same-size READs models one doorbell ring: the NIC serves the
train back-to-back and the client observes a single completion after the
last response.  The batched booking must be *time-identical* to N
sequential ``book`` calls on an otherwise idle single-slot pipe, and the
endpoint must fall back to per-verb scalar reads whenever faults, tracing,
or an epoch fence could observe individual verbs.
"""

import pytest

from repro.memory import Controller, MemoryNode, MemoryPool
from repro.rdma import RdmaEndpoint
from repro.sim import Engine
from repro.sim.engine import SimulationError
from repro.sim.faults import DropWindow, FaultInjector, FaultPlan
from repro.sim.resources import RateLimiter


@pytest.fixture()
def fabric():
    engine = Engine()
    node = MemoryNode(engine, size=1 << 16)
    Controller(node, cores=1, reserve=1024)
    pool = MemoryPool([node])
    endpoint = RdmaEndpoint(engine, pool)
    return engine, node, pool, endpoint


# -- RateLimiter.book_burst --------------------------------------------------


def test_book_burst_matches_sequential_books_single_slot():
    engine_a, engine_b = Engine(), Engine()
    seq = RateLimiter(engine_a, parallelism=1)
    burst = RateLimiter(engine_b, parallelism=1)
    total = 0.0
    for _ in range(10):
        total = seq.book(0.7, lead_us=0.1, lag_us=0.2)
    # Sequential books pay lead per verb; the burst rings one doorbell, so
    # only the first verb pays lead and only the last pays lag.
    combined = burst.book_burst(0.7, 10, lead_us=0.1, lag_us=0.2)
    assert seq.messages == burst.messages == 10
    assert combined == pytest.approx(0.1 + 0.7 * 10 + 0.2)
    assert total >= combined  # per-verb overhead can only add latency


def test_book_burst_of_one_equals_book():
    engine_a, engine_b = Engine(), Engine()
    one = RateLimiter(engine_a, parallelism=1).book(1.3, lead_us=0.2, lag_us=0.4)
    burst = RateLimiter(engine_b, parallelism=1).book_burst(
        1.3, 1, lead_us=0.2, lag_us=0.4)
    assert burst == pytest.approx(one)


def test_book_burst_multi_slot_falls_back_to_books():
    engine_a, engine_b = Engine(), Engine()
    seq = RateLimiter(engine_a, parallelism=4)
    burst = RateLimiter(engine_b, parallelism=4)
    last = 0.0
    for _ in range(9):
        last = seq.book(0.5)
    assert burst.book_burst(0.5, 9) == pytest.approx(last)
    assert burst.messages == seq.messages


def test_book_burst_rejects_empty_train():
    limiter = RateLimiter(Engine(), parallelism=1)
    with pytest.raises(SimulationError):
        limiter.book_burst(1.0, 0)


# -- RdmaEndpoint.read_burst -------------------------------------------------


def test_read_burst_returns_last_verb_payload(fabric):
    engine, _node, _pool, ep = fabric

    def flow():
        yield from ep.write(256, b"ABCDEFGH")
        return (yield from ep.read_burst(256, 8, count=16))

    assert engine.run_process(flow()) == b"ABCDEFGH"
    assert ep.counters.as_dict()["rdma_read"] == 16


def test_read_burst_single_count_equals_read(fabric):
    engine, _node, _pool, ep = fabric

    def flow():
        yield from ep.read_burst(0, 64, count=1)

    engine.run_process(flow())
    burst_t = engine.now

    engine2 = Engine()
    node2 = MemoryNode(engine2, size=1 << 16)
    ep2 = RdmaEndpoint(engine2, MemoryPool([node2]))

    def flow2():
        yield from ep2.read(0, 64)

    engine2.run_process(flow2())
    assert burst_t == pytest.approx(engine2.now)


def test_read_burst_faster_than_sequential_reads(fabric):
    engine, _node, _pool, ep = fabric

    def burst_flow():
        yield from ep.read_burst(0, 64, count=64)

    engine.run_process(burst_flow())
    burst_t = engine.now

    engine2 = Engine()
    node2 = MemoryNode(engine2, size=1 << 16)
    ep2 = RdmaEndpoint(engine2, MemoryPool([node2]))

    def seq_flow():
        for _ in range(64):
            yield from ep2.read(0, 64)

    engine2.run_process(seq_flow())
    assert burst_t < engine2.now  # one doorbell beats 64 round trips


def _burst_count(engine, ep, count=8):
    def flow():
        yield from ep.read_burst(0, 32, count=count)

    engine.run_process(flow())
    return ep.counters.as_dict().get("rdma_read", 0)


def test_read_burst_falls_back_when_faults_armed():
    engine = Engine()
    node = MemoryNode(engine, size=1 << 16)
    plan = FaultPlan(drops=(DropWindow(1e9, 2e9, prob=1.0),))
    injector = FaultInjector(engine, plan)
    ep = RdmaEndpoint(engine, MemoryPool([node]), faults=injector)
    assert not engine.batch_enabled  # arming the plan disabled batching
    assert _burst_count(engine, ep) == 8  # scalar loop still counts per verb


def test_read_burst_falls_back_when_batch_disabled():
    engine = Engine()
    engine.disable_batch("test")
    node = MemoryNode(engine, size=1 << 16)
    ep = RdmaEndpoint(engine, MemoryPool([node]))
    # Fallback awaits verbs one by one; totals still match.
    assert _burst_count(engine, ep) == 8


def test_read_burst_fallback_matches_sequential_timing():
    engine = Engine()
    engine.disable_batch("test")
    node = MemoryNode(engine, size=1 << 16)
    ep = RdmaEndpoint(engine, MemoryPool([node]))

    def flow():
        yield from ep.read_burst(0, 32, count=8)

    engine.run_process(flow())
    fallback_t = engine.now

    engine2 = Engine()
    node2 = MemoryNode(engine2, size=1 << 16)
    ep2 = RdmaEndpoint(engine2, MemoryPool([node2]))

    def seq():
        for _ in range(8):
            yield from ep2.read(0, 32)

    engine2.run_process(seq())
    assert fallback_t == pytest.approx(engine2.now)
