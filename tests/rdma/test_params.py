"""Unit tests for the fabric timing parameters."""

import pytest

from repro.rdma import NetworkParams


def test_nic_service_scales_with_payload():
    params = NetworkParams(nic_rate_mops=10.0, bandwidth_bytes_per_us=1000.0)
    small = params.nic_service_us("read", 0)
    large = params.nic_service_us("read", 1000)
    assert small == pytest.approx(0.1)
    assert large == pytest.approx(0.1 + 1.0)


def test_atomics_cost_more_than_reads():
    params = NetworkParams()
    assert params.nic_service_us("cas", 8) > params.nic_service_us("read", 8)
    assert params.nic_service_us("faa", 8) > params.nic_service_us("write", 8)


def test_one_way_is_half_rtt():
    params = NetworkParams(rtt_us=3.0)
    assert params.one_way_us() == pytest.approx(1.5)


def test_unknown_verb_raises():
    with pytest.raises(KeyError):
        NetworkParams().nic_service_us("bogus", 8)
