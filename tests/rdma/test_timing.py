"""Timing-model tests: verb latencies must follow the documented cost model."""

import pytest

from repro.memory import MemoryNode, MemoryPool
from repro.rdma import NetworkParams, RdmaEndpoint
from repro.sim import Engine


def make_fabric(**param_overrides):
    params = NetworkParams(**param_overrides)
    engine = Engine()
    node = MemoryNode(engine, size=1 << 16, params=params)
    pool = MemoryPool([node])
    return engine, node, RdmaEndpoint(engine, pool, params)


def run_and_time(engine, gen):
    start = engine.now
    engine.run_process(gen)
    return engine.now - start


class TestUncontendedLatency:
    def test_read_latency_formula(self):
        engine, _node, ep = make_fabric(
            rtt_us=2.0, client_overhead_us=0.3, nic_rate_mops=10.0,
            bandwidth_bytes_per_us=1000.0,
        )
        elapsed = run_and_time(engine, ep.read(0, 100))
        expected = 0.3 + 2.0 + (1.0 / 10.0) + (100 / 1000.0)
        assert elapsed == pytest.approx(expected)

    def test_cas_pays_double_nic_cost(self):
        engine, _node, ep = make_fabric(
            rtt_us=2.0, client_overhead_us=0.0, nic_rate_mops=10.0,
            bandwidth_bytes_per_us=1e9,
        )
        read_latency = run_and_time(engine, ep.read(0, 8))
        cas_latency = run_and_time(engine, ep.cas(0, 0, 1))
        assert cas_latency - read_latency == pytest.approx(0.1)

    def test_payload_adds_bandwidth_time(self):
        engine, _node, ep = make_fabric(bandwidth_bytes_per_us=100.0)
        small = run_and_time(engine, ep.read(0, 10))
        large = run_and_time(engine, ep.read(0, 1010))
        assert large - small == pytest.approx(10.0)


class TestQueueing:
    def test_backlog_emerges_past_nic_rate(self):
        """Offered load above the message rate queues at the NIC."""
        params = dict(
            rtt_us=0.0, client_overhead_us=0.0, nic_rate_mops=1.0,
            bandwidth_bytes_per_us=1e12,
        )
        engine, node, _ep = make_fabric(**params)
        finish = []

        def client():
            ep = RdmaEndpoint(engine, MemoryPool([node]), node.params)
            yield from ep.read(0, 8)
            finish.append(engine.now)

        for _ in range(10):
            engine.spawn(client())
        engine.run()
        # service time 1 us each, all arriving at t=0: the k-th leaves at ~k.
        assert finish[-1] == pytest.approx(10.0, abs=1e-6)
        assert node.nic.messages == 10

    def test_fifo_order_preserved(self):
        engine, node, _ep = make_fabric(rtt_us=0.0, client_overhead_us=0.0)
        order = []

        def client(name, delay):
            ep = RdmaEndpoint(engine, MemoryPool([node]), node.params)
            if delay:
                from repro.sim import Timeout

                yield Timeout(delay)
            yield from ep.read(0, 8)
            order.append(name)

        engine.spawn(client("first", 0.0))
        engine.spawn(client("second", 0.001))
        engine.spawn(client("third", 0.002))
        engine.run()
        assert order == ["first", "second", "third"]


class TestRpcTiming:
    def test_rpc_includes_controller_queueing(self):
        from repro.memory import Controller

        engine, node, ep = make_fabric(rtt_us=2.0, client_overhead_us=0.0)
        controller = Controller(node, cores=1)
        controller.register("slow", lambda _p: None, cpu_us=50.0)
        elapsed = run_and_time(engine, ep.rpc(node, "slow", None))
        assert elapsed >= 2.0 + 50.0
