"""Unit tests for the one-sided verb layer (semantics + timing)."""

import pytest

from repro.memory import Controller, MemoryNode, MemoryPool
from repro.rdma import NetworkParams, RdmaEndpoint
from repro.sim import Engine


@pytest.fixture()
def fabric():
    engine = Engine()
    node = MemoryNode(engine, size=1 << 16)
    Controller(node, cores=1, reserve=1024)
    pool = MemoryPool([node])
    endpoint = RdmaEndpoint(engine, pool)
    return engine, node, pool, endpoint


def test_write_then_read_roundtrip(fabric):
    engine, _node, _pool, ep = fabric

    def flow():
        yield from ep.write(100, b"payload")
        data = yield from ep.read(100, 7)
        return data

    assert engine.run_process(flow()) == b"payload"


def test_read_takes_at_least_one_rtt(fabric):
    engine, _node, _pool, ep = fabric

    def flow():
        yield from ep.read(0, 8)

    engine.run_process(flow())
    assert engine.now >= ep.params.rtt_us


def test_cas_success_and_failure(fabric):
    engine, _node, _pool, ep = fabric

    def flow():
        first = yield from ep.cas(200, 0, 7)
        second = yield from ep.cas(200, 0, 9)  # expected stale -> fails
        current = yield from ep.read(200, 8)
        return first, second, current

    first, second, current = engine.run_process(flow())
    assert first == 0  # swap happened
    assert second == 7  # returned actual value, no swap
    assert int.from_bytes(current, "little") == 7


def test_faa_accumulates_and_returns_old(fabric):
    engine, _node, _pool, ep = fabric

    def flow():
        a = yield from ep.faa(300, 5)
        b = yield from ep.faa(300, 3)
        return a, b

    a, b = engine.run_process(flow())
    assert (a, b) == (0, 5)


def test_faa_wraps_at_64_bits(fabric):
    engine, node, _pool, ep = fabric
    node.write_u64(300, (1 << 64) - 1)

    def flow():
        old = yield from ep.faa(300, 2)
        return old

    assert engine.run_process(flow()) == (1 << 64) - 1
    assert node.read_u64(300) == 1


def test_counters_track_verbs(fabric):
    engine, _node, _pool, ep = fabric

    def flow():
        yield from ep.write(0, b"x")
        yield from ep.read(0, 1)
        yield from ep.cas(8, 0, 1)
        yield from ep.faa(16, 1)

    engine.run_process(flow())
    counts = ep.counters.as_dict()
    assert counts == {"rdma_write": 1, "rdma_read": 1, "rdma_cas": 1, "rdma_faa": 1}


def test_nic_serializes_concurrent_clients():
    engine = Engine()
    params = NetworkParams(
        rtt_us=0.0, client_overhead_us=0.0, nic_rate_mops=1.0,
        bandwidth_bytes_per_us=1e12,
    )
    node = MemoryNode(engine, size=4096, params=params)
    pool = MemoryPool([node])
    finish = []

    def client():
        ep = RdmaEndpoint(engine, pool, params)
        yield from ep.read(0, 8)
        finish.append(engine.now)

    for _ in range(3):
        engine.spawn(client())
    engine.run()
    # one message per microsecond at 1 Mops (tiny bandwidth term tolerated)
    assert finish == pytest.approx([1.0, 2.0, 3.0], abs=1e-6)


def test_atomicity_under_concurrent_cas():
    """Exactly one of N concurrent CAS(0 -> id) winners."""
    engine = Engine()
    node = MemoryNode(engine, size=4096)
    pool = MemoryPool([node])
    outcomes = []

    def client(client_id):
        ep = RdmaEndpoint(engine, pool)
        old = yield from ep.cas(0, 0, client_id)
        outcomes.append((client_id, old))

    for cid in (1, 2, 3, 4):
        engine.spawn(client(cid))
    engine.run()
    winners = [cid for cid, old in outcomes if old == 0]
    assert len(winners) == 1
    assert node.read_u64(0) == winners[0]


def test_post_write_is_asynchronous(fabric):
    engine, node, _pool, ep = fabric

    def flow():
        ep.post_write(500, b"later")
        if False:
            yield
        return engine.now

    issued_at = engine.run_process(flow())
    assert issued_at == 0.0  # returned immediately
    engine.run()
    assert node.read_bytes(500, 5) == b"later"


def test_charge_costs_time_without_memory_access(fabric):
    engine, node, _pool, ep = fabric
    before = bytes(node.read_bytes(0, 64))

    def flow():
        yield from ep.charge(node, "read", 64)

    engine.run_process(flow())
    assert engine.now > 0
    assert node.read_bytes(0, 64) == before


def test_rpc_without_controller_raises():
    engine = Engine()
    node = MemoryNode(engine, size=4096)
    pool = MemoryPool([node])
    ep = RdmaEndpoint(engine, pool)

    def flow():
        yield from ep.rpc(node, "x", None)

    with pytest.raises(RuntimeError, match="no controller"):
        engine.run_process(flow())


def test_rpc_dispatches_registered_handler(fabric):
    engine, node, _pool, ep = fabric
    node.controller.register("echo", lambda payload: payload * 2, cpu_us=1.0)

    def flow():
        result = yield from ep.rpc(node, "echo", 21)
        return result

    assert engine.run_process(flow()) == 42


def test_multi_node_pool_routes_by_address():
    engine = Engine()
    node_a = MemoryNode(engine, size=4096, base=0, node_id=0)
    node_b = MemoryNode(engine, size=4096, base=4096, node_id=1)
    pool = MemoryPool([node_a, node_b])
    ep = RdmaEndpoint(engine, pool)

    def flow():
        yield from ep.write(100, b"a")
        yield from ep.write(4196, b"b")

    engine.run_process(flow())
    assert node_a.read_bytes(100, 1) == b"a"
    assert node_b.read_bytes(4196, 1) == b"b"
