"""Wall-clock chaos layer: gates, journals, kill/restart, and the drill.

Unit tests cover the pure pieces — sim-to-wall plan compilation, the
per-node :class:`~repro.runtime.chaos.ChaosGate`, the durable grant
journal, and the :class:`~repro.runtime.client.NodeHealth` circuit
breaker — against plain buffers and fake clocks.  The integration tests
spawn real ``repro.runtime.server`` processes: SIGKILL mid-run, restart
against the surviving shared-memory heap, fail-fast via the reaper, and
a scaled-down end-to-end chaos drill finishing with the invariant sweep.
"""

from __future__ import annotations

import asyncio
import struct
import time

import pytest

from repro.rdma.verbs import NodeUnavailable
from repro.runtime.chaos import ChaosGate, run_chaos
from repro.runtime.client import NodeHealth, drive
from repro.runtime.cluster import RealCluster
from repro.runtime.harness import RealClusterHarness
from repro.runtime.journal import (
    DurableSegmentState,
    GrantJournal,
    journal_bytes,
)
from repro.runtime.server import shm_name
from repro.sim.faults import (
    DOWN,
    DROP,
    OK,
    ClientCrash,
    DropWindow,
    FaultPlan,
    LatencySpike,
    NodeOutage,
    RpcFailure,
    compile_wall,
)


# -- plan compilation -------------------------------------------------------


def test_compile_wall_scales_every_time_quantity():
    plan = FaultPlan(
        drops=(DropWindow(10.0, 20.0, prob=0.5, verbs=("read",)),),
        spikes=(LatencySpike(5.0, 15.0, extra_us=7.0),),
        outages=(NodeOutage(1, 30.0, 40.0),),
        rpc_failures=(RpcFailure(2.0, 4.0, prob=0.25),),
        seed=3,
    )
    wall, dropped = compile_wall(plan, time_scale=50.0)
    assert dropped == ()
    assert (wall.drops[0].start_us, wall.drops[0].end_us) == (500.0, 1000.0)
    # Probabilities, scoping, and the seed are not time quantities.
    assert wall.drops[0].prob == 0.5
    assert wall.drops[0].verbs == ("read",)
    assert wall.seed == 3
    # Spike extra_us *is* a time quantity: it scales with the windows.
    assert (wall.spikes[0].start_us, wall.spikes[0].end_us) == (250.0, 750.0)
    assert wall.spikes[0].extra_us == 350.0
    assert (wall.outages[0].start_us, wall.outages[0].end_us) == (
        1500.0, 2000.0,
    )
    assert (wall.rpc_failures[0].start_us, wall.rpc_failures[0].end_us) == (
        100.0, 200.0,
    )


def test_compile_wall_reports_sim_only_kinds_and_rejects_bad_scale():
    plan = FaultPlan(client_crashes=(ClientCrash(0, 100.0),))
    _wall, dropped = compile_wall(plan, time_scale=10.0)
    assert dropped == ("client_crashes",)
    with pytest.raises(ValueError):
        compile_wall(plan, time_scale=0.0)


# -- the per-node fault gate ------------------------------------------------


def _gate_at(plan: FaultPlan, node_id: int, now_us: float) -> ChaosGate:
    """A gate whose clock currently reads ``now_us`` (wide-window tests
    tolerate the microseconds that elapse before the outcome call)."""
    gate = ChaosGate(plan, node_id)
    gate.arm(time.time() - now_us / 1e6)
    return gate


def test_gate_drops_matching_verbs_inside_the_window_only():
    plan = FaultPlan(drops=(DropWindow(1e6, 2e6, verbs=("read",)),))
    inside = _gate_at(plan, 0, 1.5e6)
    assert inside.verb_outcome("read") == (DROP, 0.0)
    assert inside.verb_outcome("write") == (OK, 0.0)
    assert _gate_at(plan, 0, 0.5e6).verb_outcome("read") == (OK, 0.0)
    assert _gate_at(plan, 0, 2.5e6).verb_outcome("read") == (OK, 0.0)


def test_gate_unarmed_or_wrong_node_passes_everything():
    plan = FaultPlan(drops=(DropWindow(0.0, 1e12, node_id=1),))
    unarmed = ChaosGate(plan, 1)
    assert unarmed.verb_outcome("read") == (OK, 0.0)
    other_node = _gate_at(plan, 2, 1e6)
    assert other_node.verb_outcome("read") == (OK, 0.0)


def test_gate_outage_downs_only_its_node():
    plan = FaultPlan(outages=(NodeOutage(1, 1e6, 2e6),))
    assert _gate_at(plan, 1, 1.5e6).verb_outcome("read") == (DOWN, 0.0)
    assert _gate_at(plan, 0, 1.5e6).verb_outcome("read") == (OK, 0.0)
    assert _gate_at(plan, 1, 2.5e6).verb_outcome("read") == (OK, 0.0)


def test_gate_spikes_accumulate_extra_latency():
    plan = FaultPlan(spikes=(
        LatencySpike(1e6, 2e6, extra_us=300.0),
        LatencySpike(1e6, 3e6, extra_us=200.0),
    ))
    assert _gate_at(plan, 0, 1.5e6).verb_outcome("write") == (OK, 500.0)
    assert _gate_at(plan, 0, 2.5e6).verb_outcome("write") == (OK, 200.0)


def test_gate_folds_rpc_failures_into_rpc_scoped_drops():
    plan = FaultPlan(rpc_failures=(RpcFailure(1e6, 2e6),))
    gate = _gate_at(plan, 0, 1.5e6)
    assert gate.verb_outcome("rpc") == (DROP, 0.0)
    assert gate.verb_outcome("read") == (OK, 0.0)


def test_gate_rng_is_per_node_and_deterministic():
    plan = FaultPlan(drops=(DropWindow(0.0, 1e12, prob=0.5),), seed=7)
    first = _gate_at(plan, 1, 1e6)
    second = _gate_at(plan, 1, 1e6)
    seq = [first.verb_outcome("read")[0] for _ in range(64)]
    assert seq == [second.verb_outcome("read")[0] for _ in range(64)]
    assert DROP in seq and OK in seq  # actually probabilistic
    other = _gate_at(plan, 2, 1e6)
    assert seq != [other.verb_outcome("read")[0] for _ in range(64)]


# -- the durable grant journal ----------------------------------------------


def test_journal_adopt_rebuilds_grants_frees_and_tokens():
    buf = memoryview(bytearray(journal_bytes(64)))
    state = DurableSegmentState(0, 4096, 1 << 20, GrantJournal(buf, 64))
    a = state.alloc(8192, owner=1, token=11)
    b = state.alloc(4096, owner=2, token=22)
    c = state.alloc(4096, owner=1)
    state.free(b, 4096)

    adopted = DurableSegmentState.adopt(0, 4096, 1 << 20, buf)
    assert sorted(adopted.grants[1]) == sorted([(a, 8192), (c, 4096)])
    assert 2 not in adopted.grants or not adopted.grants[2]
    assert adopted.free_segments == {4096: [b]}
    assert adopted.next_free == state.next_free
    # Only the *live* grant's token survives as dedup state.
    assert adopted.token_grants == {11: a}
    # A resent alloc across the crash gets the original grant back.
    assert adopted.alloc(8192, owner=1, token=11) == a
    # A fresh alloc recycles the freed range rather than bumping.
    assert adopted.alloc(4096, owner=3) == b


def test_journal_free_reuse_rewrites_owner_and_token_in_place():
    buf = memoryview(bytearray(journal_bytes(8)))
    state = DurableSegmentState(0, 0, 1 << 16, GrantJournal(buf, 8))
    addr = state.alloc(4096, owner=1, token=5)
    state.free(addr, 4096)
    again = state.alloc(4096, owner=9, token=6)
    assert again == addr
    assert state.journal.count == 1  # in-place rewrite, no new entry
    adopted = DurableSegmentState.adopt(0, 0, 1 << 16, buf)
    assert adopted.grants == {9: [(addr, 4096)]}
    assert adopted.token_grants == {6: addr}


def test_journal_attach_ignores_torn_entries():
    buf = memoryview(bytearray(journal_bytes(8)))
    state = DurableSegmentState(0, 0, 1 << 16, GrantJournal(buf, 8))
    addr = state.alloc(4096, owner=3)
    # Simulate a SIGKILL between an entry store and its size word: the
    # published count covers an entry whose size is still zero, which
    # rebuild must skip (size is the validity gate).
    buf[16:24] = struct.pack("<Q", 2)
    adopted = DurableSegmentState.adopt(0, 0, 1 << 16, buf)
    assert list(adopted.journal.entries()) == [(addr, 4096, 3, 0)]
    assert adopted.grants == {3: [(addr, 4096)]}


def test_journal_attach_rejects_foreign_bytes():
    buf = memoryview(bytearray(journal_bytes(8)))
    with pytest.raises(ValueError):
        GrantJournal.attach(buf)


# -- the health view (fail-fast circuit breaker) ----------------------------


def test_node_health_breaker_probes_and_notifies():
    health = NodeHealth(probe_interval_s=0.05)
    transitions = []
    health.add_listener(lambda: transitions.append(health.down_ids()))

    assert not health.is_down(1)
    assert health.allow_probe(1)  # healthy nodes are never gated

    health.report_down(1)
    health.report_down(1)  # idempotent: one transition, one notify
    assert health.is_down(1)
    assert transitions == [frozenset({1})]

    assert health.allow_probe(1)       # first probe is due immediately
    assert not health.allow_probe(1)   # then the interval gates
    time.sleep(0.06)
    assert health.allow_probe(1)

    health.mark_up(1)
    assert not health.is_down(1)
    assert transitions == [frozenset({1}), frozenset()]


# -- integration: kill, adopt, fail fast, drill -----------------------------


def _mini_harness(**kwargs) -> RealClusterHarness:
    defaults = dict(
        capacity_objects=1024, num_clients=4, num_memory_nodes=2, seed=9,
    )
    defaults.update(kwargs)
    return RealClusterHarness(**defaults)


def test_kill_restart_adopt_preserves_acknowledged_writes():
    harness = _mini_harness()
    try:
        descriptor = harness.launch()

        async def scenario():
            cluster = RealCluster(descriptor, timeout_s=5.0)
            try:
                cluster.add_clients(1)
                client = cluster.clients[0]
                values = {
                    b"key-%d" % i: bytes([i % 251]) * 64 for i in range(80)
                }
                for key, value in values.items():
                    await drive(client.set(key, value))

                assert harness.kill_node(1)
                assert harness.reap() == [1]
                harness.restart_node(1)

                # Every acknowledged Set is readable: data came out of the
                # surviving heap, grant state out of the adopted journal.
                for key, value in values.items():
                    assert await drive(client.get(key)) == value
            finally:
                await cluster.aclose()

        asyncio.run(scenario())
    finally:
        harness.shutdown()
    assert harness.leak_report()["clean"]


def test_reaped_node_fails_fast_instead_of_burning_timeouts():
    harness = _mini_harness()
    try:
        descriptor = harness.launch()

        async def scenario():
            # Deliberately generous verb timeout: fail-fast must come from
            # the health view, not from the timeout expiring.
            cluster = RealCluster(descriptor, timeout_s=10.0)
            try:
                cluster.add_clients(1)
                ep = cluster.clients[0].ep
                node1 = next(
                    n for n in cluster.nodes if n.node_id == 1
                )
                assert await drive(ep.read(node1.base, 8)) == bytes(8)

                harness.kill_node(1)
                for node_id in harness.reap():
                    cluster.health.report_down(node_id)

                t0 = time.perf_counter()
                with pytest.raises(NodeUnavailable):
                    await drive(ep.read(node1.base, 8))  # allowed probe
                with pytest.raises(NodeUnavailable, match="marked down"):
                    await drive(ep.read(node1.base, 8))  # gated outright
                assert time.perf_counter() - t0 < 2.0
                # The cluster steered allocation off the dead node.
                striped = cluster.clients[0].alloc
                active = {
                    node.node_id
                    for node, on in zip(striped._nodes, striped._active)
                    if on
                }
                assert 1 not in active
            finally:
                await cluster.aclose()

        asyncio.run(scenario())
    finally:
        harness.shutdown()
    leak = harness.leak_report()
    assert leak["leaked_shm"] == [shm_name(harness.run_id, 1)]
    assert harness.unlink_leaked() == [shm_name(harness.run_id, 1)]
    assert harness.leak_report()["clean"]


def test_chaos_drill_end_to_end_sweeps_clean():
    plan = FaultPlan(
        drops=(DropWindow(1_000.0, 6_000.0, prob=0.05),),
        seed=31,
    )
    harness = _mini_harness(seed=11)
    try:
        harness.launch()
        report = asyncio.run(run_chaos(
            harness, plan, time_scale=50.0, clients=4, ops=600,
            n_keys=300, preload=100, seed=11,
        ))
    finally:
        harness.shutdown()
    assert report["failed_ops"] == 0
    chaos = report["chaos"]
    assert chaos["plan"] == plan.to_dict()
    sweep = chaos["sweep"]
    assert sweep["granted_bytes"] == (
        sweep["live_bytes"] + sweep["free_bytes"]
        + sweep["bump_bytes"] + sweep["spare_bytes"]
    )
    assert harness.leak_report()["clean"]


def test_chaos_refuses_sim_only_plans_and_node0_kills():
    harness = _mini_harness()  # never launched: both checks are up-front
    with pytest.raises(ValueError, match="sim-only"):
        asyncio.run(run_chaos(
            harness, FaultPlan(client_crashes=(ClientCrash(0, 10.0),)),
        ))
    with pytest.raises(ValueError, match="node 0"):
        asyncio.run(run_chaos(harness, FaultPlan(), kill_node_id=0))
