"""Integration: the wall-clock observability layer on a live cluster.

Spawns real ``repro.runtime.server`` processes and checks the three
contracts ISSUE 10 pins down:

- **traced runs export mergeable shards** — with ``REPRO_TRACE`` set,
  every process (launcher + each memory node) writes a shard, including
  through the chaos drill's SIGKILL/restart cycle, and the merged trace
  passes the validator with one lane group per process;
- **live introspection** — ``__stats__`` answers on a dark node, and
  ``__stats_arm__`` switches metrics on at runtime without a restart;
- **zero cost when disarmed** — without ``REPRO_TRACE``, neither the
  client endpoint nor the server holds an observability handle, and no
  shard or registry appears anywhere.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.obs import runtime as obs_runtime
from repro.obs.runtime import merge_shards
from repro.obs.trace import validate_trace
from repro.runtime.chaos import run_chaos
from repro.runtime.cluster import RealCluster
from repro.runtime.harness import RealClusterHarness, control_rpc
from repro.runtime.loadgen import run_load
from repro.sim.faults import DropWindow, FaultPlan


@pytest.fixture(autouse=True)
def _isolated_obs(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_EPOCH", raising=False)
    obs_runtime._reset()
    yield
    obs_runtime._reset()


def _mini_harness(seed=11):
    return RealClusterHarness(
        capacity_objects=1024, num_clients=4, num_memory_nodes=2, seed=seed
    )


def test_traced_load_merges_into_valid_trace(tmp_path, monkeypatch):
    trace_dir = str(tmp_path / "rt")
    monkeypatch.setenv("REPRO_TRACE", trace_dir)
    obs_runtime.init("launcher")  # launcher publishes the epoch origin

    harness = _mini_harness()
    try:
        descriptor = harness.launch()
        report = asyncio.run(run_load(
            descriptor, clients=4, ops=400, n_keys=300, preload=50, seed=11
        ))
    finally:
        harness.shutdown()
    obs_runtime.current().flush()
    assert report["failed_ops"] == 0

    shards = sorted(os.listdir(trace_dir))
    # launcher + one per memory node, all sharing the launcher's epoch
    assert len(shards) == 3
    doc, info = merge_shards(trace_dir)
    assert [s["role"] for s in info["shards"]] == ["launcher", "mn0", "mn1"]
    assert info["skipped"] == []
    assert validate_trace(doc) == []
    lanes = {e["pid"] for e in doc["traceEvents"] if e.get("ph") == "X"}
    assert len(lanes) >= 3
    names = {
        e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"
    }
    # client ops from the launcher, verb service spans from the nodes,
    # the load phase marker, and the harness control spans
    assert {"op.get", "op.set", "read", "write", "load",
            "harness.launch"} <= names


def test_traced_chaos_drill_records_faults_and_kill_cycle(
    tmp_path, monkeypatch
):
    trace_dir = str(tmp_path / "rt")
    monkeypatch.setenv("REPRO_TRACE", trace_dir)
    obs_runtime.init("launcher")

    plan = FaultPlan(
        drops=(DropWindow(1_000.0, 6_000.0, prob=0.05),), seed=31
    )
    harness = _mini_harness()
    try:
        harness.launch()
        report = asyncio.run(run_chaos(
            harness, plan, time_scale=50.0, clients=4, ops=600,
            n_keys=300, preload=100, seed=11, kill_node_id=1,
        ))
    finally:
        harness.shutdown()
    obs_runtime.current().flush()

    # The digest rode along on the report (satellite S1).
    digest = report["digest"]
    assert digest["ops"] == report["ops"]
    assert digest["chaos"]["verdicts"]["ok"] > 0
    assert "sweep" in digest["chaos"]

    doc, info = merge_shards(trace_dir)
    assert validate_trace(doc) == []
    # SIGKILL writes nothing by design (only the atomic-rename commit
    # point counts); the restarted mn1 contributes a fresh shard, so the
    # drill still yields one lane per live process.
    assert [s["role"] for s in info["shards"]] == ["launcher", "mn0", "mn1"]
    restarted = [s for s in info["shards"] if s["role"] == "mn1"]
    assert restarted[0]["events"] > 0
    names = {e["name"] for e in doc["traceEvents"]}
    assert {"harness.kill", "harness.restart_adopt", "fault.drop",
            "chaos.quiesce", "chaos.reconcile_grants"} <= names


def test_stats_rpc_and_runtime_arming():
    harness = _mini_harness()
    try:
        descriptor = harness.launch()
        node = descriptor["nodes"][0]

        stats = control_rpc(node["host"], node["port"], "__stats__", None)
        assert stats["role"] == "mn0"
        assert stats["obs_armed"] is False and stats["metrics"] is None
        assert stats["uptime_s"] >= 0.0

        control_rpc(node["host"], node["port"], "__stats_arm__", None)
        asyncio.run(run_load(
            descriptor, clients=2, ops=200, n_keys=100, preload=20, seed=3
        ))
        stats = control_rpc(node["host"], node["port"], "__stats__", None)
        assert stats["obs_armed"] is True
        assert stats["ops_served"] > 0
        verb_rows = [
            row for row in stats["metrics"]["counters"]
            if row["name"] == "verbs"
        ]
        assert sum(row["value"] for row in verb_rows) > 0
        hist_rows = {
            row["labels"]["verb"]: row
            for row in stats["metrics"]["histograms"]
            if row["name"] == "verb.service_us" and row["count"] > 0
        }
        assert {"read", "write"} <= set(hist_rows)
        assert all(
            r["mean"] > 0 and r["max"] > 0 for r in hist_rows.values()
        )
        # quantile ordering holds where the streaming tails have data
        assert all(
            r["p99"] >= r["p50"]
            for r in hist_rows.values() if r["count"] >= 20
        )
    finally:
        harness.shutdown()
    assert harness.leak_report()["clean"]


def test_disarmed_runs_hold_no_obs_state(tmp_path):
    """The zero-cost conformance check (satellite S6).

    Without REPRO_TRACE nothing may allocate observability state: the
    endpoint handle is None, the servers report dark, and no shard file
    appears anywhere the run touches.
    """
    assert "REPRO_TRACE" not in os.environ
    harness = _mini_harness()
    try:
        descriptor = harness.launch()
        cluster = RealCluster(descriptor)
        endpoint = cluster.make_endpoint(None)
        assert endpoint._obs_proc is None
        assert endpoint._obs_hist == {}
        asyncio.run(endpoint.aclose())

        report = asyncio.run(run_load(
            descriptor, clients=2, ops=200, n_keys=100, preload=20, seed=3
        ))
        assert report["failed_ops"] == 0

        for node in descriptor["nodes"]:
            stats = control_rpc(node["host"], node["port"], "__stats__",
                                None)
            assert stats["obs_armed"] is False
            assert stats["metrics"] is None
    finally:
        harness.shutdown()
    assert obs_runtime.current() is None
    assert not list(tmp_path.iterdir())


def test_server_flushes_shard_on_sigterm_drain(tmp_path, monkeypatch):
    """Satellite S2: a SIGTERM'd server must not lose its shard."""
    trace_dir = str(tmp_path / "rt")
    monkeypatch.setenv("REPRO_TRACE", trace_dir)
    obs_runtime.init("launcher")

    harness = _mini_harness()
    try:
        descriptor = harness.launch()
        asyncio.run(run_load(
            descriptor, clients=2, ops=200, n_keys=100, preload=20, seed=3
        ))
    finally:
        harness.shutdown()  # SIGTERM-driven drain path

    shards = [
        name for name in os.listdir(trace_dir) if name.startswith("shard-mn")
    ]
    assert len(shards) == 2
    for name in shards:
        doc = json.load(open(os.path.join(trace_dir, name)))
        verb_spans = [
            e for e in doc["traceEvents"]
            if e.get("ph") == "X" and e.get("cat") == "verb"
        ]
        assert verb_spans, f"{name} flushed without verb spans"
