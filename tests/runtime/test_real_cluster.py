"""Integration: launch a real 2-node cluster, drive it, reap it cleanly.

These tests spawn actual ``repro.runtime.server`` processes with
shared-memory heaps and talk to them over loopback sockets — the
mini-cluster shape the CI smoke job uses, scaled down to stay fast.
"""

import asyncio
import json
import subprocess
import sys

import pytest

from repro.runtime.cluster import RealCluster
from repro.runtime.harness import RealClusterHarness
from repro.runtime.loadgen import run_load


def test_cluster_serves_load_and_shuts_down_leak_free():
    harness = RealClusterHarness(
        capacity_objects=1024, num_clients=4, num_memory_nodes=2, seed=5
    )
    try:
        descriptor = harness.launch()
        report = asyncio.run(run_load(
            descriptor, clients=4, ops=400, n_keys=300, preload=50, seed=5
        ))
    finally:
        harness.shutdown()
    assert report["ops"] >= 400
    assert report["failed_ops"] == 0
    assert report["hit_rate"] > 0.3
    assert report["counters"]["rdma_read"] > 0
    assert report["counters"]["rdma_write"] > 0
    leak = harness.leak_report()
    assert leak == {"live_processes": [], "leaked_shm": [], "clean": True}


def test_shm_direct_reads_serve_gets():
    with RealClusterHarness(
        capacity_objects=512, num_clients=2, num_memory_nodes=1, seed=5
    ) as harness:
        report = asyncio.run(run_load(
            harness.descriptor(), clients=2, ops=200, n_keys=100,
            preload=50, seed=5, shm_reads=True,
        ))
    assert report["failed_ops"] == 0
    assert report["counters"]["shm_direct_read"] > 0
    assert harness.leak_report()["clean"]


def test_descriptor_mismatch_is_rejected():
    with RealClusterHarness(
        capacity_objects=512, num_clients=2, num_memory_nodes=1, seed=5
    ) as harness:
        descriptor = harness.descriptor()
        # A client that disagrees on the construction scalars must refuse
        # to join rather than compute wrong addresses.
        skewed = dict(
            descriptor, capacity_objects=1024, max_capacity_objects=2048
        )
        with pytest.raises(ValueError, match="do not match the"):
            RealCluster(skewed)


def test_ablation_configs_are_sim_only():
    descriptor = {
        "capacity_objects": 512, "object_bytes": 256, "num_clients": 2,
        "segment_bytes": 256 * 1024, "config": {"use_sfht": False},
        "nodes": [],
    }
    with pytest.raises(ValueError, match="sim-only"):
        RealCluster(descriptor)


def test_serve_cli_smoke(tmp_path):
    """The CI invocation: embedded load, clean shutdown, leak-checked."""
    descriptor_path = tmp_path / "cluster.json"
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.serve",
            "--memory-nodes", "2", "--capacity", "1024",
            "--clients", "4", "--load", "400", "--preload", "50",
            "--descriptor", str(descriptor_path),
        ],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert '"clean": true' in proc.stdout
    descriptor = json.loads(descriptor_path.read_text())
    assert len(descriptor["nodes"]) == 2
