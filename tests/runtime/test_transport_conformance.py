"""Transport conformance: one suite, both substrates (DESIGN §3.7).

Every test here runs twice — once against the sim substrate
(:class:`repro.rdma.verbs.RdmaEndpoint` on a discrete-event engine) and
once against the real substrate (:class:`repro.runtime.client.RealEndpoint`
talking to a live ``repro.runtime.server`` process over loopback sockets
and shared memory).  The assertions are verb-level: byte semantics,
atomic old-value returns and 64-bit wrap, controller RPC behavior, fence
NACKs, and failure surfacing.  The portable layers above the transport
are correct only if both substrates pass identical assertions.
"""

from __future__ import annotations

import asyncio
import socket
import subprocess
import sys
import time
import uuid

import pytest

from repro.core.elasticity import EpochFence
from repro.memory import Controller, MemoryNode, MemoryPool
from repro.memory.controller import OutOfMemoryError
from repro.rdma import RdmaEndpoint
from repro.rdma.verbs import NodeUnavailable, StaleEpoch, VerbTimeout
from repro.runtime.client import (
    NodeHandle,
    RealEndpoint,
    WallClockRuntime,
    drive,
)
from repro.sim import Engine
from repro.sim.faults import (
    DropWindow,
    FaultInjector,
    FaultPlan,
    NodeOutage,
)

HEAP_SIZE = 1 << 16
RESERVE = 4 * 1024
SCRATCH = 64  # raw-verb playground inside the controller reserve


class SimSubstrate:
    name = "sim"

    def __init__(self):
        self.engine = Engine()
        self.node = MemoryNode(self.engine, size=HEAP_SIZE)
        Controller(self.node, cores=1, reserve=RESERVE)
        self.injector = FaultInjector(self.engine)
        self.ep = RdmaEndpoint(
            self.engine, MemoryPool([self.node]), faults=self.injector
        )
        self.rpc_node = self.node

    def run(self, gen):
        return self.engine.run_process(gen)

    def settle(self):
        self.engine.run()

    def arm_timeouts(self):
        self.injector.load(FaultPlan(drops=(DropWindow(0.0, 1e12),)))

    def make_unreachable(self):
        self.injector.load(FaultPlan(outages=(NodeOutage(0, 0.0, 1e12),)))
        return self.ep, self.rpc_node

    def arm_plan(self, plan):
        self.injector.load(plan)

    def disarm_plan(self):
        self.injector.load(FaultPlan())

    def bounce(self):
        # A sim node bounce is an outage window that has already closed:
        # DRAM contents persist by construction, nothing to restart.
        pass

    def close(self):
        pass


class RealSubstrate:
    name = "real"

    def __init__(self):
        self._argv = [
            sys.executable, "-m", "repro.runtime.server",
            "--node-id", "0", "--base", "0", "--size", str(HEAP_SIZE),
            "--reserve", str(RESERVE),
            "--run-id", f"conf-{uuid.uuid4().hex[:8]}",
        ]
        self.proc = subprocess.Popen(
            self._argv,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        line = self.proc.stdout.readline()
        assert line.startswith("DITTO-NODE "), line
        fields = dict(part.split("=", 1) for part in line.split()[1:])
        self.rpc_node = NodeHandle(
            0, 0, HEAP_SIZE, "127.0.0.1", int(fields["port"]), fields["shm"]
        )
        self.loop = asyncio.new_event_loop()
        self.runtime = WallClockRuntime()
        self.ep = RealEndpoint(self.runtime, [self.rpc_node])

    def run(self, gen):
        return self.loop.run_until_complete(drive(gen))

    def settle(self):
        self.loop.run_until_complete(self.runtime.drain_background())

    def arm_timeouts(self):
        # A wedged controller: the debug RPC sleeps far past the verb
        # timeout, so every subsequent op on this endpoint expires.
        self.ep.timeout_s = 0.2

    def make_unreachable(self):
        # A node handle whose port nothing listens on.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        dead = NodeHandle(0, 0, HEAP_SIZE, "127.0.0.1", dead_port)
        return RealEndpoint(self.runtime, [dead]), dead

    def arm_plan(self, plan):
        # Arm the server's in-process fault gate with the very plan the
        # sim injector loads; parity plans are authored in wall-µs, so
        # no compile_wall scaling here (test_chaos.py covers that).  The
        # verb timeout shrinks so a gate drop expires quickly.
        self._saved_timeout = self.ep.timeout_s
        self.ep.timeout_s = 0.3

        def flow():
            yield from self.ep.rpc(
                self.rpc_node, "__chaos_load__",
                (plan.to_dict(), time.time()),
            )

        self.run(flow())

    def disarm_plan(self):
        def flow():
            yield from self.ep.rpc(self.rpc_node, "__chaos_stop__", None)

        self.run(flow())
        self.ep.timeout_s = self._saved_timeout

    def bounce(self):
        # SIGKILL, then restart-and-adopt on the same port: the shared-
        # memory heap survives the kill and the replacement rebuilds from
        # it; the endpoint's broken connection heals via resend.
        port = self.rpc_node.port
        self.proc.kill()
        self.proc.wait()
        self.proc.stdout.close()
        self.proc.stderr.close()
        self.proc = subprocess.Popen(
            self._argv + ["--port", str(port), "--adopt"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        line = self.proc.stdout.readline()
        assert line.startswith("DITTO-NODE "), line

    def close(self):
        self.loop.run_until_complete(self.ep.aclose())
        self.loop.close()
        self.proc.terminate()
        self.proc.wait(timeout=10)
        self.proc.stdout.close()
        self.proc.stderr.close()


@pytest.fixture(params=["sim", "real"])
def substrate(request):
    sub = SimSubstrate() if request.param == "sim" else RealSubstrate()
    yield sub
    sub.close()


def test_write_read_roundtrip(substrate):
    ep = substrate.ep

    def flow():
        yield from ep.write(SCRATCH, b"conformance")
        return (yield from ep.read(SCRATCH, 11))

    assert substrate.run(flow()) == b"conformance"


def test_fresh_memory_reads_as_zeros(substrate):
    ep = substrate.ep

    def flow():
        return (yield from ep.read(SCRATCH + 256, 16))

    assert substrate.run(flow()) == bytes(16)


def test_cas_returns_old_value_and_applies_once(substrate):
    ep = substrate.ep
    addr = SCRATCH + 512

    def flow():
        first = yield from ep.cas(addr, 0, 7)
        second = yield from ep.cas(addr, 0, 9)  # stale expected -> no swap
        raw = yield from ep.read(addr, 8)
        return first, second, int.from_bytes(raw, "little")

    assert substrate.run(flow()) == (0, 7, 7)


def test_faa_returns_old_and_wraps_mod_2_64(substrate):
    ep = substrate.ep
    addr = SCRATCH + 1024

    def flow():
        a = yield from ep.faa(addr, 5)
        b = yield from ep.faa(addr, 3)
        yield from ep.write(addr, ((1 << 64) - 1).to_bytes(8, "little"))
        old = yield from ep.faa(addr, 2)
        raw = yield from ep.read(addr, 8)
        return a, b, old, int.from_bytes(raw, "little")

    assert substrate.run(flow()) == (0, 5, (1 << 64) - 1, 1)


def test_read_burst_equals_repeated_reads(substrate):
    ep = substrate.ep
    addr = SCRATCH + 1536

    def flow():
        yield from ep.write(addr, b"burstburst")
        return (yield from ep.read_burst(addr, 10, 3))

    assert substrate.run(flow()) == b"burstburst"


def test_rpc_alloc_list_free_semantics(substrate):
    ep, node = substrate.ep, substrate.rpc_node

    def flow():
        addr = yield from ep.rpc(node, "alloc_segment", (4096, 3))
        granted = yield from ep.rpc(node, "list_segments", 3)
        yield from ep.rpc(node, "free_segment", (addr, 4096))
        after = yield from ep.rpc(node, "list_segments", 3)
        return addr, list(granted), list(after)

    addr, granted, after = substrate.run(flow())
    assert addr >= RESERVE  # grants never overlap the reserved region
    assert (addr, 4096) in granted
    assert (addr, 4096) not in after


def test_rpc_exhaustion_surfaces_oom(substrate):
    ep, node = substrate.ep, substrate.rpc_node

    def flow():
        yield from ep.rpc(node, "alloc_segment", (2 * HEAP_SIZE, 3))

    with pytest.raises(OutOfMemoryError):
        substrate.run(flow())


def test_fence_nacks_mutations_with_stale_epoch(substrate):
    ep = substrate.ep
    fence = EpochFence()
    fence.advance(2)
    fence.fence_writes(0, HEAP_SIZE, 0)
    ep.fence = fence
    addr = SCRATCH + 2048

    def write_flow():
        yield from ep.write(addr, b"x")

    def cas_flow():
        yield from ep.cas(addr, 0, 1)

    def read_flow():
        return (yield from ep.read(addr, 1))

    for flow in (write_flow, cas_flow):
        with pytest.raises(StaleEpoch) as err:
            substrate.run(flow())
        assert err.value.epoch == 2
    # Draining fences only mutations: reads still pass ...
    assert substrate.run(read_flow()) == b"\x00"
    # ... until the node is retired, when everything NACKs.
    fence.retire(0, HEAP_SIZE, 0)
    with pytest.raises(StaleEpoch):
        substrate.run(read_flow())
    ep.fence = None


def test_fenced_background_posts_are_dropped_silently(substrate):
    ep = substrate.ep
    fence = EpochFence()
    fence.fence_writes(0, HEAP_SIZE, 0)
    ep.fence = fence
    before = ep.counters.get("fenced_post_dropped")

    def flow():
        ep.post_write(SCRATCH + 3000, b"doomed")
        return None
        yield  # pragma: no cover — makes this a generator

    substrate.run(flow())
    substrate.settle()
    assert ep.counters.get("fenced_post_dropped") == before + 1
    ep.fence = None


def test_timeouts_surface_as_verb_timeout(substrate):
    substrate.arm_timeouts()
    ep, node = substrate.ep, substrate.rpc_node

    if substrate.name == "real":
        def flow():
            yield from ep.rpc(node, "__sleep__", 5.0)
    else:
        def flow():
            yield from ep.read(SCRATCH, 8)

    with pytest.raises(VerbTimeout):
        substrate.run(flow())


def test_same_plan_drop_surfaces_as_verb_timeout(substrate):
    # One FaultPlan, two substrates: a dropped verb never executes, so the
    # client observes silence and times out — on the sim via the injector,
    # on the real substrate via the server's ChaosGate swallowing the
    # request frame mid-verb.
    plan = FaultPlan(drops=(DropWindow(0.0, 1e12, verbs=("read",)),))
    substrate.arm_plan(plan)
    ep = substrate.ep

    def flow():
        return (yield from ep.read(SCRATCH, 8))

    with pytest.raises(VerbTimeout):
        substrate.run(flow())
    substrate.disarm_plan()
    assert substrate.run(flow()) == bytes(8)


def test_same_plan_outage_surfaces_as_node_unavailable(substrate):
    # The same outage window downs the node on both substrates.  On the
    # real one this is the connection-reset-between-frames path: the gate
    # closes the socket before executing, every resend meets another
    # reset, and the bounded retry loop converts that to NodeUnavailable.
    plan = FaultPlan(outages=(NodeOutage(0, 0.0, 1e12),))
    substrate.arm_plan(plan)
    ep = substrate.ep

    def flow():
        return (yield from ep.read(SCRATCH, 8))

    with pytest.raises(NodeUnavailable):
        substrate.run(flow())
    substrate.disarm_plan()
    assert substrate.run(flow()) == bytes(8)


def test_node_bounce_preserves_memory(substrate):
    # An MN crash/restart cycle loses no committed bytes: the real server
    # is SIGKILLed and readopts its surviving shared-memory heap; the sim
    # models the same contract by construction (outages never clear DRAM).
    ep = substrate.ep
    addr = SCRATCH + 3500

    def write_flow():
        yield from ep.write(addr, b"durable!")

    def read_flow():
        return (yield from ep.read(addr, 8))

    substrate.run(write_flow())
    substrate.bounce()
    assert substrate.run(read_flow()) == b"durable!"


def test_unreachable_node_surfaces_as_node_unavailable(substrate):
    ep, node = substrate.make_unreachable()

    def flow():
        yield from ep.read(SCRATCH, 8)

    def rpc_flow():
        yield from ep.rpc(node, "list_segments", 0)

    with pytest.raises(NodeUnavailable):
        substrate.run(flow())
    with pytest.raises(NodeUnavailable):
        substrate.run(rpc_flow())
