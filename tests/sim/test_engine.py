"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, Event, SimulationError, Timeout


def test_time_starts_at_zero():
    assert Engine().now == 0.0


def test_timeout_advances_clock():
    engine = Engine()

    def proc():
        yield Timeout(5.0)
        yield Timeout(2.5)
        return "done"

    result = engine.run_process(proc())
    assert result == "done"
    assert engine.now == pytest.approx(7.5)


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_processes_interleave_in_time_order():
    engine = Engine()
    order = []

    def proc(name, delay):
        yield Timeout(delay)
        order.append((name, engine.now))

    engine.spawn(proc("slow", 10.0))
    engine.spawn(proc("fast", 1.0))
    engine.spawn(proc("mid", 5.0))
    engine.run()
    assert order == [("fast", 1.0), ("mid", 5.0), ("slow", 10.0)]


def test_run_until_stops_and_advances_clock_exactly():
    engine = Engine()
    fired = []

    def proc():
        yield Timeout(100.0)
        fired.append(engine.now)

    engine.spawn(proc())
    engine.run(until=50.0)
    assert engine.now == 50.0
    assert fired == []
    engine.run(until=150.0)
    assert fired == [100.0]
    assert engine.now == 150.0


def test_event_wakes_waiters_with_value():
    engine = Engine()
    event = Event(engine)
    results = []

    def waiter(name):
        value = yield event
        results.append((name, value, engine.now))

    def trigger():
        yield Timeout(3.0)
        event.trigger("payload")

    engine.spawn(waiter("a"))
    engine.spawn(waiter("b"))
    engine.spawn(trigger())
    engine.run()
    assert results == [("a", "payload", 3.0), ("b", "payload", 3.0)]


def test_wait_on_already_triggered_event_resumes_immediately():
    engine = Engine()
    event = Event(engine)
    event.trigger(42)

    def proc():
        value = yield event
        return value

    assert engine.run_process(proc()) == 42


def test_event_cannot_trigger_twice():
    engine = Engine()
    event = Event(engine)
    event.trigger()
    with pytest.raises(SimulationError):
        event.trigger()


def test_join_returns_child_result():
    engine = Engine()

    def child():
        yield Timeout(4.0)
        return "child-result"

    def parent():
        process = engine.spawn(child())
        value = yield process
        return value, engine.now

    assert engine.run_process(parent()) == ("child-result", 4.0)


def test_yield_from_composes_subroutines():
    engine = Engine()

    def inner():
        yield Timeout(1.0)
        return 10

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    assert engine.run_process(outer()) == 20
    assert engine.now == pytest.approx(2.0)


def test_bad_yield_raises_helpful_error():
    engine = Engine()

    def proc():
        yield 123  # not a command

    engine.spawn(proc())
    with pytest.raises(SimulationError, match="non-command"):
        engine.run()


def test_run_process_detects_deadlock():
    engine = Engine()
    event = Event(engine)  # never triggered

    def proc():
        yield event

    with pytest.raises(SimulationError, match="deadlock"):
        engine.run_process(proc())


def test_scheduling_into_past_rejected():
    engine = Engine()
    engine.run(until=10.0)
    with pytest.raises(SimulationError):
        engine.call_at(5.0, lambda: None)


def test_fifo_order_for_same_timestamp():
    engine = Engine()
    order = []
    for i in range(5):
        engine.call_later(1.0, order.append, i)
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_spawn_returns_process_with_result():
    engine = Engine()

    def proc():
        yield Timeout(1.0)
        return 99

    p = engine.spawn(proc())
    assert not p.finished
    engine.run()
    assert p.finished
    assert p.result == 99
