"""Engine-level fault support: process kill semantics and rich diagnostics."""

import pytest

from repro.sim import Engine, Event, Process, SimulationError, Timeout


class TestProcessKill:
    def test_kill_stops_resumes_and_triggers_done(self):
        engine = Engine()
        steps = []

        def proc():
            steps.append("a")
            yield Timeout(10.0)
            steps.append("b")

        process = engine.spawn(proc())
        engine.run(until=5.0)
        process.kill()
        assert process.killed
        assert process.done.triggered
        engine.run()
        assert steps == ["a"]  # the pending resume became a no-op

    def test_kill_runs_finally_blocks(self):
        engine = Engine()
        cleaned = []

        def proc():
            try:
                yield Timeout(10.0)
            finally:
                cleaned.append(True)

        process = engine.spawn(proc())
        engine.run(until=1.0)
        process.kill()
        assert cleaned == [True]

    def test_kill_is_idempotent_and_noop_after_finish(self):
        engine = Engine()

        def proc():
            yield Timeout(1.0)
            return 42

        process = engine.spawn(proc())
        engine.run()
        assert process.finished
        process.kill()  # must not clobber a finished process
        assert not process.killed
        process2 = engine.spawn(proc())
        engine.run(until=engine.now + 0.5)
        process2.kill()
        process2.kill()
        assert process2.killed

    def test_killed_waiter_wakes_dependents(self):
        engine = Engine()
        woke = []

        def sleeper():
            yield Timeout(100.0)

        def waiter(process):
            yield process.done
            woke.append(engine.now)

        sleeper_proc = engine.spawn(sleeper())
        engine.spawn(waiter(sleeper_proc))
        engine.run(until=5.0)
        sleeper_proc.kill()
        engine.run()
        assert woke == [5.0]


class TestDiagnostics:
    def test_negative_timeout_names_process_and_time(self):
        engine = Engine()

        def culprit():
            yield Timeout(3.0)
            yield Timeout(-1.0)

        engine.spawn(culprit(), name="culprit_proc")
        with pytest.raises(SimulationError) as excinfo:
            engine.run()
        message = str(excinfo.value)
        assert "t=3.000" in message
        assert "culprit_proc" in message

    def test_double_trigger_names_active_process(self):
        engine = Engine()
        event = Event(engine)

        def bad():
            yield Timeout(2.0)
            event.trigger(1)
            event.trigger(2)

        engine.spawn(bad(), name="double_trigger_proc")
        with pytest.raises(SimulationError) as excinfo:
            engine.run()
        message = str(excinfo.value)
        assert "double resume" in message
        assert "double_trigger_proc" in message
