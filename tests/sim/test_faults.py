"""Unit tests for the fault-injection framework (plans and injector)."""

import pytest

from repro.sim import (
    ClientCrash,
    DropWindow,
    Engine,
    FaultInjector,
    FaultPlan,
    LatencySpike,
    NodeOutage,
    RpcFailure,
    Timeout,
)
from repro.sim.faults import DOWN, DROP, OK


def make_plan():
    return FaultPlan(
        drops=(DropWindow(10.0, 20.0, prob=0.5, node_id=1, verbs=("read",)),),
        spikes=(LatencySpike(5.0, 30.0, extra_us=7.0),),
        outages=(NodeOutage(node_id=0, start_us=40.0, end_us=50.0),),
        rpc_failures=(RpcFailure(15.0, 25.0),),
        client_crashes=(ClientCrash(client_index=2, at_us=12.5),),
        seed=99,
    )


class TestFaultPlan:
    def test_empty(self):
        assert FaultPlan().empty
        assert not make_plan().empty

    def test_dict_roundtrip(self):
        plan = make_plan()
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan

    def test_to_dict_is_json_safe(self):
        import json

        json.dumps(make_plan().to_dict())

    def test_shifted_moves_every_window(self):
        plan = make_plan().shifted(100.0)
        assert plan.drops[0].start_us == 110.0
        assert plan.spikes[0].end_us == 130.0
        assert plan.outages[0].start_us == 140.0
        assert plan.rpc_failures[0].end_us == 125.0
        assert plan.client_crashes[0].at_us == 112.5
        assert plan.seed == 99

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            DropWindow(10.0, 5.0)
        with pytest.raises(ValueError):
            DropWindow(0.0, 1.0, prob=1.5)
        with pytest.raises(ValueError):
            NodeOutage(0, 10.0, 5.0)
        with pytest.raises(ValueError):
            LatencySpike(0.0, 1.0, extra_us=-2.0)


class TestFaultInjector:
    def advance(self, engine, t):
        def proc():
            yield Timeout(t - engine.now)

        engine.run_process(proc())

    def test_inert_without_plan(self):
        injector = FaultInjector(Engine())
        assert injector.verb_outcome(0, "read") == (OK, 0.0)
        assert not injector.node_down(0)

    def test_outage_window(self):
        engine = Engine()
        injector = FaultInjector(
            engine, FaultPlan(outages=(NodeOutage(0, 10.0, 20.0),))
        )
        assert injector.verb_outcome(0, "read") == (OK, 0.0)
        self.advance(engine, 10.0)
        assert injector.verb_outcome(0, "read")[0] == DOWN
        assert injector.node_down(0)
        assert not injector.node_down(1)
        self.advance(engine, 20.0)
        assert injector.verb_outcome(0, "read") == (OK, 0.0)

    def test_drop_scoping_by_node_and_verb(self):
        engine = Engine()
        injector = FaultInjector(
            engine,
            FaultPlan(drops=(DropWindow(0.0, 10.0, node_id=1, verbs=("cas",)),)),
        )
        assert injector.verb_outcome(1, "cas")[0] == DROP
        assert injector.verb_outcome(1, "read")[0] == OK
        assert injector.verb_outcome(0, "cas")[0] == OK

    def test_latency_spikes_accumulate(self):
        engine = Engine()
        injector = FaultInjector(
            engine,
            FaultPlan(
                spikes=(
                    LatencySpike(0.0, 10.0, extra_us=3.0),
                    LatencySpike(0.0, 10.0, extra_us=4.0),
                )
            ),
        )
        assert injector.verb_outcome(0, "read") == (OK, 7.0)

    def test_rpc_failures_compile_to_rpc_drops(self):
        engine = Engine()
        injector = FaultInjector(
            engine, FaultPlan(rpc_failures=(RpcFailure(0.0, 10.0),))
        )
        assert injector.verb_outcome(0, "rpc")[0] == DROP
        assert injector.verb_outcome(0, "read")[0] == OK

    def test_probabilistic_drops_are_seed_deterministic(self):
        def outcomes(seed):
            engine = Engine()
            injector = FaultInjector(
                engine, FaultPlan(drops=(DropWindow(0.0, 10.0, prob=0.5),), seed=seed)
            )
            return [injector.verb_outcome(0, "read")[0] for _ in range(64)]

        assert outcomes(1) == outcomes(1)
        assert outcomes(1) != outcomes(2)  # astronomically unlikely to match

    def test_non_matching_verbs_leave_rng_untouched(self):
        engine = Engine()
        injector = FaultInjector(
            engine,
            FaultPlan(drops=(DropWindow(0.0, 10.0, prob=0.5, verbs=("cas",)),), seed=3),
        )
        state = injector.rng.getstate()
        injector.verb_outcome(0, "read")
        assert injector.rng.getstate() == state
        injector.verb_outcome(0, "cas")
        assert injector.rng.getstate() != state

    def test_load_with_offset(self):
        engine = Engine()
        injector = FaultInjector(engine)
        injector.load(FaultPlan(outages=(NodeOutage(0, 0.0, 5.0),)), offset_us=50.0)
        assert injector.verb_outcome(0, "read")[0] == OK
        self.advance(engine, 51.0)
        assert injector.verb_outcome(0, "read")[0] == DOWN
