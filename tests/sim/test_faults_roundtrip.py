"""Property test: FaultPlan serialization round-trips exactly.

Fault plans are cache-key material and travel through JSON (experiment
manifests, the CI chaos job); ``from_dict(json(to_dict(plan)))`` must be the
identity for every constructible plan — including the controller-HA fault
types, whose nested partition groups JSON turns into lists.  ``shifted``
must compose additively and preserve window lengths.
"""

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.sim.faults import (
    ClientCrash,
    ControllerCrash,
    DropWindow,
    FaultPlan,
    LatencySpike,
    NodeOutage,
    Partition,
    RpcFailure,
)

# Times as non-negative multiples of 0.5 us: exact in binary floating point,
# so shifting and equality stay bit-precise.
times = st.integers(min_value=0, max_value=2_000_000).map(lambda n: n / 2.0)
node_ids = st.one_of(st.none(), st.integers(min_value=0, max_value=7))
verbs = st.one_of(
    st.none(),
    st.lists(
        st.sampled_from(["read", "write", "cas", "faa", "rpc"]),
        min_size=1, max_size=3, unique=True,
    ).map(tuple),
)
probs = st.integers(min_value=0, max_value=100).map(lambda n: n / 100.0)


@st.composite
def windows(draw):
    start = draw(times)
    length = draw(times)
    return start, start + length


@st.composite
def drop_windows(draw):
    start, end = draw(windows())
    return DropWindow(start, end, prob=draw(probs), node_id=draw(node_ids),
                      verbs=draw(verbs))


@st.composite
def latency_spikes(draw):
    start, end = draw(windows())
    return LatencySpike(start, end, extra_us=draw(times),
                        node_id=draw(node_ids), verbs=draw(verbs))


@st.composite
def node_outages(draw):
    start, end = draw(windows())
    return NodeOutage(draw(st.integers(0, 7)), start, end)


@st.composite
def rpc_failures(draw):
    start, end = draw(windows())
    return RpcFailure(start, end, prob=draw(probs), node_id=draw(node_ids))


@st.composite
def client_crashes(draw):
    return ClientCrash(draw(st.integers(0, 15)), draw(times))


@st.composite
def controller_crashes(draw):
    start, end = draw(windows())
    return ControllerCrash(draw(st.integers(0, 6)), start, end)


@st.composite
def partitions(draw):
    start, end = draw(windows())
    replicas = draw(
        st.lists(st.integers(0, 6), min_size=0, max_size=5, unique=True)
    )
    n_groups = draw(st.integers(min_value=0, max_value=max(len(replicas), 1)))
    groups = [[] for _ in range(n_groups)]
    for index, rid in enumerate(replicas):
        if groups:
            groups[index % n_groups].append(rid)
    return Partition(start, end, groups=tuple(tuple(g) for g in groups))


@st.composite
def fault_plans(draw):
    few = dict(min_size=0, max_size=3)
    return FaultPlan(
        drops=tuple(draw(st.lists(drop_windows(), **few))),
        spikes=tuple(draw(st.lists(latency_spikes(), **few))),
        outages=tuple(draw(st.lists(node_outages(), **few))),
        rpc_failures=tuple(draw(st.lists(rpc_failures(), **few))),
        client_crashes=tuple(draw(st.lists(client_crashes(), **few))),
        controller_crashes=tuple(draw(st.lists(controller_crashes(), **few))),
        partitions=tuple(draw(st.lists(partitions(), **few))),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
    )


@settings(max_examples=200, deadline=None)
@given(plan=fault_plans())
def test_to_dict_json_from_dict_is_identity(plan):
    wire = json.loads(json.dumps(plan.to_dict()))
    assert FaultPlan.from_dict(wire) == plan


@settings(max_examples=100, deadline=None)
@given(plan=fault_plans(), a=times, b=times)
def test_shifted_composes_and_round_trips(plan, a, b):
    assert plan.shifted(0.0) == plan
    assert plan.shifted(a).shifted(b) == plan.shifted(a + b)
    wire = json.loads(json.dumps(plan.shifted(a).to_dict()))
    assert FaultPlan.from_dict(wire) == plan.shifted(a)


@settings(max_examples=100, deadline=None)
@given(plan=fault_plans(), offset=times)
def test_shifted_preserves_window_lengths_and_empty(plan, offset):
    moved = plan.shifted(offset)
    assert moved.empty == plan.empty
    for name in ("drops", "spikes", "outages", "rpc_failures",
                 "controller_crashes", "partitions"):
        for before, after in zip(getattr(plan, name), getattr(moved, name)):
            assert after.end_us - after.start_us == pytest.approx(
                before.end_us - before.start_us
            )
    for before, after in zip(plan.client_crashes, moved.client_crashes):
        assert after.at_us == before.at_us + offset
        assert after.client_index == before.client_index
