"""Unit tests for Resource / RateLimiter / Lock contention semantics."""

import pytest

from repro.sim import Engine, Lock, RateLimiter, Resource, SimulationError, Timeout


def test_resource_capacity_one_serializes():
    engine = Engine()
    resource = Resource(engine, capacity=1)
    spans = []

    def worker(name):
        yield from resource.acquire()
        start = engine.now
        yield Timeout(10.0)
        resource.release()
        spans.append((name, start, engine.now))

    for name in "abc":
        engine.spawn(worker(name))
    engine.run()
    assert spans == [("a", 0.0, 10.0), ("b", 10.0, 20.0), ("c", 20.0, 30.0)]


def test_resource_parallel_capacity():
    engine = Engine()
    resource = Resource(engine, capacity=2)
    done = []

    def worker(name):
        yield from resource.serve(10.0)
        done.append((name, engine.now))

    for name in "abcd":
        engine.spawn(worker(name))
    engine.run()
    # two at a time: a,b finish at 10; c,d at 20
    assert [t for _, t in done] == [10.0, 10.0, 20.0, 20.0]


def test_release_without_acquire_raises():
    engine = Engine()
    resource = Resource(engine, 1)
    with pytest.raises(SimulationError):
        resource.release()


def test_capacity_increase_wakes_waiters():
    engine = Engine()
    resource = Resource(engine, capacity=1)
    done = []

    def worker(name):
        yield from resource.serve(10.0)
        done.append((name, engine.now))

    def grower():
        yield Timeout(1.0)
        resource.set_capacity(3)

    for name in "abc":
        engine.spawn(worker(name))
    engine.spawn(grower())
    engine.run()
    # b and c start at t=1 after the capacity grows
    assert done == [("a", 10.0), ("b", 11.0), ("c", 11.0)]


def test_capacity_decrease_drains_gracefully():
    engine = Engine()
    resource = Resource(engine, capacity=2)

    def worker():
        yield from resource.serve(10.0)

    engine.spawn(worker())
    engine.spawn(worker())
    engine.run(until=1.0)
    resource.set_capacity(1)
    assert resource.in_use == 2  # existing holders keep their slots
    engine.spawn(worker())
    engine.run()
    # third worker waits for both to finish, then runs alone: 10 + 10
    assert engine.now == pytest.approx(20.0)


def test_queue_length_visible():
    engine = Engine()
    resource = Resource(engine, 1)

    def worker():
        yield from resource.serve(5.0)

    for _ in range(3):
        engine.spawn(worker())
    engine.run(until=1.0)
    assert resource.in_use == 1
    assert resource.queue_length == 2


def test_rate_limiter_queueing_delay():
    engine = Engine()
    nic = RateLimiter(engine)
    finish = []

    def sender():
        yield from nic.serve(2.0)
        finish.append(engine.now)

    for _ in range(4):
        engine.spawn(sender())
    engine.run()
    assert finish == [2.0, 4.0, 6.0, 8.0]
    assert nic.messages == 4


def test_rate_limiter_variable_service_times():
    engine = Engine()
    nic = RateLimiter(engine)
    finish = []

    def sender(cost):
        yield from nic.serve(cost)
        finish.append((cost, engine.now))

    engine.spawn(sender(1.0))
    engine.spawn(sender(5.0))
    engine.spawn(sender(1.0))
    engine.run()
    assert finish == [(1.0, 1.0), (5.0, 6.0), (1.0, 7.0)]


def test_lock_mutual_exclusion():
    engine = Engine()
    lock = Lock(engine)
    trace = []

    def critical(name):
        yield from lock.acquire()
        trace.append(("enter", name, engine.now))
        yield Timeout(3.0)
        trace.append(("exit", name, engine.now))
        lock.release()

    engine.spawn(critical("a"))
    engine.spawn(critical("b"))
    engine.run()
    assert trace == [
        ("enter", "a", 0.0),
        ("exit", "a", 3.0),
        ("enter", "b", 3.0),
        ("exit", "b", 6.0),
    ]
    assert not lock.locked


def test_resource_rejects_bad_capacity():
    engine = Engine()
    with pytest.raises(SimulationError):
        Resource(engine, 0)
    resource = Resource(engine, 1)
    with pytest.raises(SimulationError):
        resource.set_capacity(0)


def test_capacity_shrink_then_drain_releases_to_new_limit():
    """After a shrink, releases stop handing slots to waiters until in_use
    falls below the new capacity, then serving resumes at the new width."""
    engine = Engine()
    resource = Resource(engine, capacity=3)
    done = []

    def worker(name, service):
        yield from resource.serve(service)
        done.append((name, engine.now))

    for name in "abc":
        engine.spawn(worker(name, 10.0))
    for name in "de":
        engine.spawn(worker(name, 10.0))
    engine.run(until=1.0)
    assert resource.in_use == 3 and resource.queue_length == 2
    resource.set_capacity(1)
    engine.run()
    # a,b,c drain at t=10 (holders keep slots); then strictly one at a time:
    # d runs 10->20, e runs 20->30.
    assert [t for _, t in done] == [10.0, 10.0, 10.0, 20.0, 30.0]
    assert resource.in_use == 0


def test_capacity_shrink_grow_cycle_preserves_fifo():
    engine = Engine()
    resource = Resource(engine, capacity=2)
    done = []

    def worker(name):
        yield from resource.serve(10.0)
        done.append(name)

    for name in "abcdef":
        engine.spawn(worker(name))
    engine.run(until=1.0)
    resource.set_capacity(1)
    engine.run(until=15.0)  # a,b done at 10; only c admitted (new cap 1)
    assert resource.in_use == 1
    resource.set_capacity(3)  # growth wakes d,e immediately
    engine.run()
    assert done == list("abcdef")


def test_rate_limiter_shrink_preserves_booked_backlog():
    """Shrinking parallelism keeps the *busiest* slots: work already booked
    on the pipe must survive an elasticity shrink (regression test for the
    earliest-slot-keeping bug)."""
    engine = Engine()
    nic = RateLimiter(engine, parallelism=2)
    finish = []

    def sender(cost):
        yield from nic.serve(cost)
        finish.append(engine.now)

    # Book slot 0 out to t=100 and slot 1 out to t=40.
    engine.spawn(sender(100.0))
    engine.spawn(sender(40.0))
    engine.run(until=0.0)
    assert nic.backlog_us == pytest.approx(100.0)
    nic.set_parallelism(1)
    # The busiest booking (t=100) must survive the shrink...
    assert nic.backlog_us == pytest.approx(100.0)

    # ...so new work queues behind it instead of overlapping it.
    engine.spawn(sender(5.0))
    engine.run()
    assert finish == [40.0, 100.0, 105.0]


def test_rate_limiter_grow_adds_idle_slots_at_now():
    engine = Engine()
    nic = RateLimiter(engine, parallelism=1)
    finish = []

    def sender(cost):
        yield from nic.serve(cost)
        finish.append(engine.now)

    engine.spawn(sender(50.0))
    engine.run(until=10.0)
    nic.set_parallelism(3)
    # New slots are free immediately: two new jobs run in parallel at t=10.
    engine.spawn(sender(5.0))
    engine.spawn(sender(5.0))
    engine.run()
    assert finish == [15.0, 15.0, 50.0]


def test_rate_limiter_shrink_grow_shrink_keeps_largest():
    engine = Engine()
    nic = RateLimiter(engine, parallelism=3)

    def sender(cost):
        yield from nic.serve(cost)

    for cost in (30.0, 20.0, 10.0):
        engine.spawn(sender(cost))
    engine.run(until=0.0)
    nic.set_parallelism(2)
    assert sorted(nic._free_at) == [20.0, 30.0]
    nic.set_parallelism(1)
    assert nic._free_at == [30.0]


def test_rate_limiter_book_matches_serve():
    """book() is the non-generator core of serve(): same booking math."""
    e1, e2 = Engine(), Engine()
    nic1, nic2 = RateLimiter(e1), RateLimiter(e2)
    delays = [nic1.book(2.0, 1.0, 0.5) for _ in range(3)]
    finish = []

    def sender():
        yield from nic2.serve(2.0, 1.0, 0.5)
        finish.append(e2.now)

    for _ in range(3):
        e2.spawn(sender())
    e2.run()
    assert delays == [3.5, 5.5, 7.5]
    assert finish == [3.5, 5.5, 7.5]
    assert nic1.messages == nic2.messages == 3
