"""Unit tests for Resource / RateLimiter / Lock contention semantics."""

import pytest

from repro.sim import Engine, Lock, RateLimiter, Resource, SimulationError, Timeout


def test_resource_capacity_one_serializes():
    engine = Engine()
    resource = Resource(engine, capacity=1)
    spans = []

    def worker(name):
        yield from resource.acquire()
        start = engine.now
        yield Timeout(10.0)
        resource.release()
        spans.append((name, start, engine.now))

    for name in "abc":
        engine.spawn(worker(name))
    engine.run()
    assert spans == [("a", 0.0, 10.0), ("b", 10.0, 20.0), ("c", 20.0, 30.0)]


def test_resource_parallel_capacity():
    engine = Engine()
    resource = Resource(engine, capacity=2)
    done = []

    def worker(name):
        yield from resource.serve(10.0)
        done.append((name, engine.now))

    for name in "abcd":
        engine.spawn(worker(name))
    engine.run()
    # two at a time: a,b finish at 10; c,d at 20
    assert [t for _, t in done] == [10.0, 10.0, 20.0, 20.0]


def test_release_without_acquire_raises():
    engine = Engine()
    resource = Resource(engine, 1)
    with pytest.raises(SimulationError):
        resource.release()


def test_capacity_increase_wakes_waiters():
    engine = Engine()
    resource = Resource(engine, capacity=1)
    done = []

    def worker(name):
        yield from resource.serve(10.0)
        done.append((name, engine.now))

    def grower():
        yield Timeout(1.0)
        resource.set_capacity(3)

    for name in "abc":
        engine.spawn(worker(name))
    engine.spawn(grower())
    engine.run()
    # b and c start at t=1 after the capacity grows
    assert done == [("a", 10.0), ("b", 11.0), ("c", 11.0)]


def test_capacity_decrease_drains_gracefully():
    engine = Engine()
    resource = Resource(engine, capacity=2)

    def worker():
        yield from resource.serve(10.0)

    engine.spawn(worker())
    engine.spawn(worker())
    engine.run(until=1.0)
    resource.set_capacity(1)
    assert resource.in_use == 2  # existing holders keep their slots
    engine.spawn(worker())
    engine.run()
    # third worker waits for both to finish, then runs alone: 10 + 10
    assert engine.now == pytest.approx(20.0)


def test_queue_length_visible():
    engine = Engine()
    resource = Resource(engine, 1)

    def worker():
        yield from resource.serve(5.0)

    for _ in range(3):
        engine.spawn(worker())
    engine.run(until=1.0)
    assert resource.in_use == 1
    assert resource.queue_length == 2


def test_rate_limiter_queueing_delay():
    engine = Engine()
    nic = RateLimiter(engine)
    finish = []

    def sender():
        yield from nic.serve(2.0)
        finish.append(engine.now)

    for _ in range(4):
        engine.spawn(sender())
    engine.run()
    assert finish == [2.0, 4.0, 6.0, 8.0]
    assert nic.messages == 4


def test_rate_limiter_variable_service_times():
    engine = Engine()
    nic = RateLimiter(engine)
    finish = []

    def sender(cost):
        yield from nic.serve(cost)
        finish.append((cost, engine.now))

    engine.spawn(sender(1.0))
    engine.spawn(sender(5.0))
    engine.spawn(sender(1.0))
    engine.run()
    assert finish == [(1.0, 1.0), (5.0, 6.0), (1.0, 7.0)]


def test_lock_mutual_exclusion():
    engine = Engine()
    lock = Lock(engine)
    trace = []

    def critical(name):
        yield from lock.acquire()
        trace.append(("enter", name, engine.now))
        yield Timeout(3.0)
        trace.append(("exit", name, engine.now))
        lock.release()

    engine.spawn(critical("a"))
    engine.spawn(critical("b"))
    engine.run()
    assert trace == [
        ("enter", "a", 0.0),
        ("exit", "a", 3.0),
        ("enter", "b", 3.0),
        ("exit", "b", 6.0),
    ]
    assert not lock.locked


def test_resource_rejects_bad_capacity():
    engine = Engine()
    with pytest.raises(SimulationError):
        Resource(engine, 0)
    resource = Resource(engine, 1)
    with pytest.raises(SimulationError):
        resource.set_capacity(0)
