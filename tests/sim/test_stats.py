"""Unit tests for measurement utilities."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import CounterSet, LatencyStats, ThroughputSeries, hit_rate, relative_change


class TestLatencyStats:
    def test_empty_is_nan(self):
        stats = LatencyStats()
        assert math.isnan(stats.mean())
        assert math.isnan(stats.p99())
        assert stats.count == 0

    def test_percentiles_ordered(self):
        stats = LatencyStats()
        stats.extend(float(i) for i in range(1, 101))
        assert stats.median() == pytest.approx(50.5)
        assert stats.p99() >= stats.median() >= stats.percentile(1)

    def test_mean(self):
        stats = LatencyStats()
        stats.extend([1.0, 2.0, 3.0])
        assert stats.mean() == pytest.approx(2.0)

    def test_summary_and_reset(self):
        stats = LatencyStats()
        stats.record(5.0)
        summary = stats.summary()
        assert summary["count"] == 1
        assert summary["p50"] == 5.0
        stats.reset()
        assert stats.count == 0

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=200))
    def test_percentile_bounds(self, samples):
        stats = LatencyStats()
        stats.extend(samples)
        assert min(samples) <= stats.percentile(50) <= max(samples)
        assert stats.percentile(0) == pytest.approx(min(samples))
        assert stats.percentile(100) == pytest.approx(max(samples))


class TestThroughputSeries:
    def test_bucketing(self):
        series = ThroughputSeries(bucket_us=1000.0)
        for t in (100.0, 900.0, 1500.0):
            series.record(t)
        points = series.series()
        assert points[0] == (0.0, 2000.0)  # 2 ops in 1 ms -> 2000 ops/s
        assert points[1] == (1000.0, 1000.0)
        assert series.total == 3

    def test_gap_buckets_are_zero(self):
        series = ThroughputSeries(bucket_us=100.0)
        series.record(50.0)
        series.record(350.0)
        rates = [rate for _, rate in series.series()]
        assert rates[1] == 0.0 and rates[2] == 0.0

    def test_average_window(self):
        series = ThroughputSeries(bucket_us=100.0)
        for t in (10.0, 20.0, 110.0):
            series.record(t)
        assert series.ops_per_second(0.0, 100.0) == pytest.approx(20000.0)

    def test_rejects_bad_bucket(self):
        with pytest.raises(ValueError):
            ThroughputSeries(bucket_us=0)

    def test_empty(self):
        assert ThroughputSeries().series() == []
        assert ThroughputSeries().ops_per_second() == 0.0


class TestCounterSet:
    def test_add_and_get(self):
        counters = CounterSet()
        counters.add("reads")
        counters.add("reads", 4)
        assert counters.get("reads") == 5
        assert counters.get("absent") == 0

    def test_as_dict_and_reset(self):
        counters = CounterSet()
        counters.add("x", 2)
        assert counters.as_dict() == {"x": 2}
        counters.reset()
        assert counters.as_dict() == {}


def test_hit_rate():
    assert hit_rate(0, 0) == 0.0
    assert hit_rate(3, 1) == pytest.approx(0.75)


def test_relative_change():
    assert relative_change([]) == 0.0
    assert relative_change([0.0, 0.0]) == 0.0
    assert relative_change([0.5, 1.0]) == pytest.approx(0.5)
    assert relative_change([0.8]) == 0.0
