"""Unit tests for measurement utilities."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import CounterSet, LatencyStats, ThroughputSeries, hit_rate, relative_change
from repro.sim.stats import StreamingHistogram


class TestLatencyStats:
    def test_empty_is_nan(self):
        stats = LatencyStats()
        assert math.isnan(stats.mean())
        assert math.isnan(stats.p99())
        assert stats.count == 0

    def test_percentiles_ordered(self):
        stats = LatencyStats()
        stats.extend(float(i) for i in range(1, 101))
        assert stats.median() == pytest.approx(50.5)
        assert stats.p99() >= stats.median() >= stats.percentile(1)

    def test_mean(self):
        stats = LatencyStats()
        stats.extend([1.0, 2.0, 3.0])
        assert stats.mean() == pytest.approx(2.0)

    def test_summary_and_reset(self):
        stats = LatencyStats()
        stats.record(5.0)
        summary = stats.summary()
        assert summary["count"] == 1
        assert summary["p50"] == 5.0
        stats.reset()
        assert stats.count == 0

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=200))
    def test_percentile_bounds(self, samples):
        stats = LatencyStats()
        stats.extend(samples)
        assert min(samples) <= stats.percentile(50) <= max(samples)
        assert stats.percentile(0) == pytest.approx(min(samples))
        assert stats.percentile(100) == pytest.approx(max(samples))


class TestLatencyStatsSpill:
    """Exact-mode -> streaming-histogram transition at ``exact_limit``."""

    def test_single_sample(self):
        stats = LatencyStats()
        stats.record(42.0)
        assert stats.exact
        assert stats.count == 1
        assert stats.mean() == 42.0
        assert stats.percentile(0) == stats.percentile(100) == 42.0

    def test_exact_below_limit(self):
        stats = LatencyStats(exact_limit=100)
        stats.extend(float(i) for i in range(99))
        assert stats.exact
        assert len(stats) == 99

    def test_spill_flips_exact_and_keeps_stats(self):
        stats = LatencyStats(exact_limit=100)
        samples = [float(i) for i in range(1, 501)]
        stats.extend(samples)
        assert not stats.exact
        assert stats.count == 500
        assert stats.mean() == pytest.approx(250.5, rel=0.001)
        # streaming percentiles stay within the bucket-width error bound
        assert stats.median() == pytest.approx(250.5, rel=0.03)
        assert stats.p99() == pytest.approx(495.05, rel=0.03)

    def test_record_after_spill_goes_to_histogram(self):
        stats = LatencyStats(exact_limit=2)
        stats.record(1.0)
        stats.record(2.0)
        assert not stats.exact
        stats.record(3.0)
        assert stats.count == 3
        assert stats.summary()["count"] == 3.0

    def test_reset_restores_exact_mode(self):
        stats = LatencyStats(exact_limit=2)
        stats.extend([1.0, 2.0, 3.0])
        assert not stats.exact
        stats.reset()
        assert stats.exact and stats.count == 0

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6),
                    min_size=20, max_size=200))
    def test_spilled_percentiles_near_exact(self, samples):
        import numpy as np

        spilled = LatencyStats(exact_limit=10)
        spilled.extend(samples)
        assert not spilled.exact
        # the histogram estimates the lower-rank sample to within one
        # log-bucket's relative width (it does not interpolate between ranks)
        for p in (50, 90, 99):
            reference = float(np.percentile(samples, p, method="lower"))
            assert spilled.percentile(p) == pytest.approx(
                reference, rel=0.05, abs=0.02
            )
            assert min(samples) <= spilled.percentile(p) <= max(samples)


class TestStreamingHistogram:
    def test_empty_is_nan(self):
        hist = StreamingHistogram()
        assert math.isnan(hist.mean())
        assert math.isnan(hist.min) and math.isnan(hist.max)
        assert math.isnan(hist.percentile(50))

    def test_relative_error_bound(self):
        hist = StreamingHistogram(growth=1.02)
        for v in range(1, 10_001):
            hist.record(float(v))
        assert hist.percentile(50) == pytest.approx(5000.0, rel=0.02)
        assert hist.percentile(99) == pytest.approx(9900.0, rel=0.02)
        assert hist.min == 1.0 and hist.max == 10_000.0

    def test_underflow_and_overflow_clamped(self):
        hist = StreamingHistogram(lo=1.0, hi=100.0)
        hist.record(0.001)   # below lo -> underflow bucket
        hist.record(1e12)    # above hi -> overflow bucket
        assert hist.count == 2
        # exact extremes are tracked on the side...
        assert hist.min == 0.001 and hist.max == 1e12
        # ...while percentile estimates collapse to the bucket range edges
        assert hist.percentile(0) == hist.lo
        assert hist.percentile(100) == pytest.approx(100.0, rel=0.1)

    def test_merge(self):
        a = StreamingHistogram()
        b = StreamingHistogram()
        a.extend([1.0, 2.0, 3.0])
        b.extend([100.0, 200.0])
        a.merge(b)
        assert a.count == 5
        assert a.total == pytest.approx(306.0)
        assert a.max == 200.0

    def test_merge_geometry_mismatch_raises(self):
        a = StreamingHistogram(growth=1.02)
        b = StreamingHistogram(growth=1.05)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_reset(self):
        hist = StreamingHistogram()
        hist.extend([5.0, 6.0])
        hist.reset()
        assert hist.count == 0 and math.isnan(hist.mean())

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            StreamingHistogram(lo=0.0)
        with pytest.raises(ValueError):
            StreamingHistogram(lo=10.0, hi=1.0)
        with pytest.raises(ValueError):
            StreamingHistogram(growth=1.0)


class TestThroughputSeries:
    def test_bucketing(self):
        series = ThroughputSeries(bucket_us=1000.0)
        for t in (100.0, 900.0, 1500.0):
            series.record(t)
        points = series.series()
        assert points[0] == (0.0, 2000.0)  # 2 ops in 1 ms -> 2000 ops/s
        assert points[1] == (1000.0, 1000.0)
        assert series.total == 3

    def test_gap_buckets_are_zero(self):
        series = ThroughputSeries(bucket_us=100.0)
        series.record(50.0)
        series.record(350.0)
        rates = [rate for _, rate in series.series()]
        assert rates[1] == 0.0 and rates[2] == 0.0

    def test_average_window(self):
        series = ThroughputSeries(bucket_us=100.0)
        for t in (10.0, 20.0, 110.0):
            series.record(t)
        assert series.ops_per_second(0.0, 100.0) == pytest.approx(20000.0)

    def test_exact_bucket_edges(self):
        # a timestamp exactly on a bucket edge belongs to the *later* bucket
        series = ThroughputSeries(bucket_us=100.0)
        series.record(0.0)
        series.record(100.0)
        series.record(199.999)
        series.record(200.0)
        points = dict(series.series())
        scale = 1e6 / 100.0
        assert points[0.0] == 1 * scale
        assert points[100.0] == 2 * scale
        assert points[200.0] == 1 * scale

    def test_window_boundaries_half_open(self):
        series = ThroughputSeries(bucket_us=100.0)
        series.record(50.0)    # bucket 0
        series.record(150.0)   # bucket 1
        # [0, 100) selects only bucket 0; the end bound is exclusive
        assert series.ops_per_second(0.0, 100.0) == pytest.approx(10000.0)
        assert series.ops_per_second(100.0, 200.0) == pytest.approx(10000.0)

    def test_negative_timestamps_bucket_correctly(self):
        series = ThroughputSeries(bucket_us=100.0)
        series.record(-50.0)
        (start, rate), = series.series()
        assert start == -100.0 and rate == pytest.approx(10000.0)

    def test_rejects_bad_bucket(self):
        with pytest.raises(ValueError):
            ThroughputSeries(bucket_us=0)

    def test_empty(self):
        assert ThroughputSeries().series() == []
        assert ThroughputSeries().ops_per_second() == 0.0


class TestCounterSet:
    def test_add_and_get(self):
        counters = CounterSet()
        counters.add("reads")
        counters.add("reads", 4)
        assert counters.get("reads") == 5
        assert counters.get("absent") == 0

    def test_as_dict_and_reset(self):
        counters = CounterSet()
        counters.add("x", 2)
        assert counters.as_dict() == {"x": 2}
        counters.reset()
        assert counters.as_dict() == {}


def test_hit_rate():
    assert hit_rate(0, 0) == 0.0
    assert hit_rate(3, 1) == pytest.approx(0.75)


def test_relative_change():
    assert relative_change([]) == 0.0
    assert relative_change([0.0, 0.0]) == 0.0
    assert relative_change([0.5, 1.0]) == pytest.approx(0.5)
    assert relative_change([0.8]) == 0.0
