"""The engine's uniform-delay storm fast path vs the scalar event loop.

Storm mode is a pure optimization: whenever it engages, observable behavior
(timestamps seen by processes, completion order, final time, kill/until
semantics) must be identical to the scalar pop-dispatch loop.  These tests
run the same workload on a storm-enabled engine and on one pinned scalar
via ``disable_batch`` and compare traces.
"""

import pytest

from repro.sim import Engine, Timeout
from repro.sim.engine import Event, SimulationError


def run_workload(engine, build):
    """Spawn ``build(engine, trace)``'s processes; run; return the trace."""
    trace = []
    build(engine, trace)
    engine.run()
    return trace


def both_engines(build, until=None, expect_storm=False):
    """Run ``build`` on a storm-enabled and a scalar-pinned engine.

    ``expect_storm=True`` additionally asserts the fast path really engaged
    on the storm engine — without it a workload that stays below
    ``_STORM_MIN`` (or never reaches ``_mixed == 0``) silently compares
    scalar-vs-scalar and cannot catch storm-mode bugs.
    """
    engaged = []
    original = Engine._run_storm

    def spy(self, horizon):
        engaged.append(self)
        return original(self, horizon)

    Engine._run_storm = spy
    try:
        storm_engine = Engine()
        scalar_engine = Engine()
        scalar_engine.disable_batch("test")
        traces = []
        for engine in (storm_engine, scalar_engine):
            trace = []
            build(engine, trace)
            engine.run(until=until)
            traces.append((trace, engine.now))
    finally:
        Engine._run_storm = original
    assert scalar_engine not in engaged, "scalar engine must never storm"
    if expect_storm:
        assert storm_engine in engaged, \
            "storm mode never engaged; this test compared scalar-vs-scalar"
    return traces[0], traces[1]


def uniform_ping(engine, trace, processes=10, events=50, delay=1.0):
    pause = Timeout(delay)

    def ping(pid):
        for i in range(events):
            yield pause
            trace.append((pid, i, engine.now))

    for pid in range(processes):
        engine.spawn(ping(pid))


def test_storm_matches_scalar_on_uniform_timeouts():
    (storm_trace, storm_end), (scalar_trace, scalar_end) = both_engines(
        uniform_ping, expect_storm=True)
    assert storm_trace == scalar_trace
    assert storm_end == scalar_end


def test_storm_respects_until_boundary():
    (storm_trace, storm_end), (scalar_trace, scalar_end) = both_engines(
        uniform_ping, until=17.0, expect_storm=True)
    assert storm_trace == scalar_trace
    assert storm_end == scalar_end == 17.0


def test_storm_flushes_on_mixed_delay():
    # 12 uniform processes keep the heap above _STORM_MIN with _mixed == 0,
    # so a storm is live when two of them yield the off-uniform delay at
    # i == 20 — the mid-storm Timeout._apply flush path.
    def build(engine, trace):
        pause = Timeout(1.0)
        slow = Timeout(2.5)

        def ping(pid):
            for i in range(40):
                yield (slow if i == 20 and pid < 2 else pause)
                trace.append((pid, i, engine.now))

        for pid in range(12):
            engine.spawn(ping(pid))

    (storm_trace, storm_end), (scalar_trace, scalar_end) = both_engines(
        build, expect_storm=True)
    assert storm_trace == scalar_trace
    assert storm_end == scalar_end


def test_storm_flushes_on_event_wait():
    # The gate triggers mid-body while a storm is draining: the waiters'
    # call_later resumes flush the storm *inside* send(), and the triggering
    # process then yields another uniform Timeout — the exact shape that
    # double-executed every remaining resume before the `_storm is dq` guard.
    def build(engine, trace):
        gate = Event(engine)
        pause = Timeout(1.0)

        def waiter(wid):
            value = yield gate
            trace.append(("gate", wid, value, engine.now))

        def ping(pid):
            for i in range(30):
                yield pause
                if pid == 0 and i == 10:
                    gate.trigger("open")
                trace.append((pid, i, engine.now))

        for wid in range(2):
            engine.spawn(waiter(wid))
        for pid in range(12):
            engine.spawn(ping(pid))

    (storm_trace, storm_end), (scalar_trace, scalar_end) = both_engines(
        build, expect_storm=True)
    assert storm_trace == scalar_trace
    assert storm_end == scalar_end


def test_storm_flushes_on_call_later():
    # The REVIEW repro: a process body calls engine.call_later mid-storm
    # (flushing the deque into the heap inside send()) and then yields the
    # uniform Timeout.  Unguarded, the storm loop kept draining the dead
    # deque and every remaining resume ran twice ("event triggered twice").
    def build(engine, trace):
        pause = Timeout(1.0)

        def ping(pid):
            for i in range(30):
                yield pause
                if pid == 2 and i == 10:
                    engine.call_later(
                        0.5, lambda: trace.append(("cb", engine.now)))
                trace.append((pid, i, engine.now))

        for pid in range(12):
            engine.spawn(ping(pid))

    (storm_trace, storm_end), (scalar_trace, scalar_end) = both_engines(
        build, expect_storm=True)
    assert storm_trace == scalar_trace
    assert storm_end == scalar_end


def test_storm_flushes_on_spawn():
    # spawn() mid-body goes through call_later and must flush the storm too.
    def build(engine, trace):
        pause = Timeout(1.0)

        def late(pid):
            for i in range(5):
                yield pause
                trace.append(("late", pid, i, engine.now))

        def ping(pid):
            for i in range(30):
                yield pause
                if pid == 1 and i == 12:
                    engine.spawn(late(pid))
                trace.append((pid, i, engine.now))

        for pid in range(12):
            engine.spawn(ping(pid))

    (storm_trace, storm_end), (scalar_trace, scalar_end) = both_engines(
        build, expect_storm=True)
    assert storm_trace == scalar_trace
    assert storm_end == scalar_end


def test_kill_during_storm():
    # The kill happens while a storm is draining; the joiner makes the
    # victim's done-event resume a waiter via call_later, so the kill also
    # flushes the storm mid-send.
    def build(engine, trace):
        pause = Timeout(1.0)
        victims = []

        def joiner():
            value = yield victims[0]
            trace.append(("joined", value, engine.now))

        def ping(pid):
            for i in range(40):
                yield pause
                trace.append((pid, i, engine.now))
                if pid == 0 and i == 5 and victims:
                    victims[0].kill()

        victims.append(engine.spawn(ping(1)))
        engine.spawn(joiner())
        engine.spawn(ping(0))
        for pid in range(2, 12):
            engine.spawn(ping(pid))

    (storm_trace, storm_end), (scalar_trace, scalar_end) = both_engines(
        build, expect_storm=True)
    assert storm_trace == scalar_trace
    assert storm_end == scalar_end


def test_storm_actually_engages(monkeypatch):
    # Guard against silently testing scalar-vs-scalar: with enough uniform
    # Timeout-only processes the storm deque must be exercised.
    engaged = []
    original = Engine._run_storm

    def spy(self, until):
        engaged.append(True)
        return original(self, until)

    monkeypatch.setattr(Engine, "_run_storm", spy)
    engine = Engine()
    trace = []
    uniform_ping(engine, trace, processes=20, events=20)
    engine.run()
    assert engaged, "storm mode never engaged on a uniform Timeout workload"


def test_disable_batch_is_one_way_and_recorded():
    engine = Engine()
    assert engine.batch_enabled
    engine.disable_batch("test-reason")
    assert not engine.batch_enabled
    assert "test-reason" in engine.batch_off_reasons
    engine.disable_batch("another")
    assert not engine.batch_enabled
    assert "another" in engine.batch_off_reasons


def test_env_switch_disables_batch(monkeypatch):
    monkeypatch.setenv("REPRO_VECTORIZE", "0")
    engine = Engine()
    assert not engine.batch_enabled


def test_error_inside_storm_propagates_and_flushes():
    # Raw process exceptions escape unwrapped — exactly as in the scalar
    # loop — and the remaining storm deque must be flushed back into a
    # valid heap so the simulation stays resumable.
    engine = Engine()
    pause = Timeout(1.0)

    def ping():
        for _ in range(40):
            yield pause

    def bad():
        for _ in range(10):
            yield pause
        raise ValueError("boom")

    for _ in range(10):
        engine.spawn(ping())
    engine.spawn(bad())
    with pytest.raises(ValueError):
        engine.run()
    assert engine._storm is None
    assert engine._heap, "pending events were lost with the storm"
    engine.run()  # the surviving processes finish
    assert engine.now == 40.0


def test_run_after_storm_continues_cleanly():
    engine = Engine()
    trace = []
    uniform_ping(engine, trace, processes=10, events=10)
    engine.run(until=5.0)
    engine.run()  # resume past the horizon; storms may re-engage
    assert trace[-1][2] == 10.0
    assert engine.now == 10.0
