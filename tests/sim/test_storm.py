"""The engine's uniform-delay storm fast path vs the scalar event loop.

Storm mode is a pure optimization: whenever it engages, observable behavior
(timestamps seen by processes, completion order, final time, kill/until
semantics) must be identical to the scalar pop-dispatch loop.  These tests
run the same workload on a storm-enabled engine and on one pinned scalar
via ``disable_batch`` and compare traces.
"""

import pytest

from repro.sim import Engine, Timeout
from repro.sim.engine import Event, SimulationError


def run_workload(engine, build):
    """Spawn ``build(engine, trace)``'s processes; run; return the trace."""
    trace = []
    build(engine, trace)
    engine.run()
    return trace


def both_engines(build, until=None):
    storm_engine = Engine()
    scalar_engine = Engine()
    scalar_engine.disable_batch("test")
    traces = []
    for engine in (storm_engine, scalar_engine):
        trace = []
        build(engine, trace)
        engine.run(until=until)
        traces.append((trace, engine.now))
    return traces[0], traces[1]


def uniform_ping(engine, trace, processes=10, events=50, delay=1.0):
    pause = Timeout(delay)

    def ping(pid):
        for i in range(events):
            yield pause
            trace.append((pid, i, engine.now))

    for pid in range(processes):
        engine.spawn(ping(pid))


def test_storm_matches_scalar_on_uniform_timeouts():
    (storm_trace, storm_end), (scalar_trace, scalar_end) = both_engines(
        uniform_ping)
    assert storm_trace == scalar_trace
    assert storm_end == scalar_end


def test_storm_respects_until_boundary():
    (storm_trace, storm_end), (scalar_trace, scalar_end) = both_engines(
        uniform_ping, until=17.0)
    assert storm_trace == scalar_trace
    assert storm_end == scalar_end == 17.0


def test_storm_flushes_on_mixed_delay():
    def build(engine, trace):
        pause = Timeout(1.0)
        slow = Timeout(2.5)

        def ping(pid):
            for i in range(40):
                yield (slow if (pid + i) % 7 == 0 else pause)
                trace.append((pid, i, engine.now))

        for pid in range(8):
            engine.spawn(ping(pid))

    (storm_trace, storm_end), (scalar_trace, scalar_end) = both_engines(build)
    assert storm_trace == scalar_trace
    assert storm_end == scalar_end


def test_storm_flushes_on_event_wait():
    def build(engine, trace):
        gate = Event(engine)
        pause = Timeout(1.0)

        def waiter():
            value = yield gate
            trace.append(("gate", value, engine.now))

        def ping(pid):
            for i in range(30):
                yield pause
                trace.append((pid, i, engine.now))
            if pid == 0:
                gate.trigger("open")

        engine.spawn(waiter())
        for pid in range(6):
            engine.spawn(ping(pid))

    (storm_trace, storm_end), (scalar_trace, scalar_end) = both_engines(build)
    assert storm_trace == scalar_trace
    assert storm_end == scalar_end


def test_storm_flushes_on_call_later():
    def build(engine, trace):
        pause = Timeout(1.0)

        def ping(pid):
            for i in range(30):
                yield pause
                if pid == 2 and i == 10:
                    engine.call_later(
                        0.5, lambda: trace.append(("cb", engine.now)))
                trace.append((pid, i, engine.now))

        for pid in range(6):
            engine.spawn(ping(pid))

    (storm_trace, storm_end), (scalar_trace, scalar_end) = both_engines(build)
    assert storm_trace == scalar_trace
    assert storm_end == scalar_end


def test_kill_during_storm():
    def build(engine, trace):
        pause = Timeout(1.0)
        victims = []

        def ping(pid):
            for i in range(40):
                yield pause
                trace.append((pid, i, engine.now))
                if pid == 0 and i == 5 and victims:
                    victims[0].kill()

        first = engine.spawn(ping(1))
        victims.append(first)
        engine.spawn(ping(0))

    (storm_trace, storm_end), (scalar_trace, scalar_end) = both_engines(build)
    assert storm_trace == scalar_trace
    assert storm_end == scalar_end


def test_storm_actually_engages(monkeypatch):
    # Guard against silently testing scalar-vs-scalar: with enough uniform
    # Timeout-only processes the storm deque must be exercised.
    engaged = []
    original = Engine._run_storm

    def spy(self, until):
        engaged.append(True)
        return original(self, until)

    monkeypatch.setattr(Engine, "_run_storm", spy)
    engine = Engine()
    trace = []
    uniform_ping(engine, trace, processes=20, events=20)
    engine.run()
    assert engaged, "storm mode never engaged on a uniform Timeout workload"


def test_disable_batch_is_one_way_and_recorded():
    engine = Engine()
    assert engine.batch_enabled
    engine.disable_batch("test-reason")
    assert not engine.batch_enabled
    assert "test-reason" in engine.batch_off_reasons
    engine.disable_batch("another")
    assert not engine.batch_enabled
    assert "another" in engine.batch_off_reasons


def test_env_switch_disables_batch(monkeypatch):
    monkeypatch.setenv("REPRO_VECTORIZE", "0")
    engine = Engine()
    assert not engine.batch_enabled


def test_error_inside_storm_propagates_and_flushes():
    # Raw process exceptions escape unwrapped — exactly as in the scalar
    # loop — and the remaining storm deque must be flushed back into a
    # valid heap so the simulation stays resumable.
    engine = Engine()
    pause = Timeout(1.0)

    def ping():
        for _ in range(40):
            yield pause

    def bad():
        for _ in range(10):
            yield pause
        raise ValueError("boom")

    for _ in range(10):
        engine.spawn(ping())
    engine.spawn(bad())
    with pytest.raises(ValueError):
        engine.run()
    assert engine._storm is None
    assert engine._heap, "pending events were lost with the storm"
    engine.run()  # the surviving processes finish
    assert engine.now == 40.0


def test_run_after_storm_continues_cleanly():
    engine = Engine()
    trace = []
    uniform_ping(engine, trace, processes=10, events=10)
    engine.run(until=5.0)
    engine.run()  # resume past the horizon; storms may re-engage
    assert trace[-1][2] == 10.0
    assert engine.now == 10.0
