"""Tests for trace mixing and concurrency interleaving."""

import numpy as np
import pytest

from repro.workloads import (
    concurrent_view,
    interleave_shards,
    mix_traces,
    offset_keys,
    shard_trace,
)


class TestOffsetKeys:
    def test_shifts(self):
        assert list(offset_keys(np.array([0, 1, 2]), 100)) == [100, 101, 102]


class TestMixTraces:
    def test_weights_respected(self):
        a = np.zeros(10_000, dtype=np.int64)
        b = np.ones(10_000, dtype=np.int64)
        mixed = mix_traces([a, b], weights=[3, 1], n_requests=10_000, seed=1)
        share_a = float(np.mean(mixed == 0))
        assert share_a == pytest.approx(0.75, abs=0.02)

    def test_source_order_preserved(self):
        a = np.arange(100, dtype=np.int64)
        b = np.arange(1000, 1100, dtype=np.int64)
        mixed = mix_traces([a, b], weights=[1, 1], n_requests=150, seed=2)
        from_a = [x for x in mixed if x < 1000]
        assert from_a == sorted(from_a)

    def test_recycles_when_exhausted(self):
        a = np.array([7, 8], dtype=np.int64)
        mixed = mix_traces([a], weights=[1], n_requests=7, seed=3)
        assert list(mixed) == [7, 8, 7, 8, 7, 8, 7]

    def test_validation(self):
        with pytest.raises(ValueError):
            mix_traces([np.array([1])], weights=[1, 2], n_requests=5)
        with pytest.raises(ValueError):
            mix_traces([np.array([1])], weights=[0], n_requests=5)


class TestSharding:
    def test_shard_count_and_content(self):
        trace = np.arange(10, dtype=np.int64)
        shards = shard_trace(trace, 3)
        assert len(shards) == 3
        assert np.array_equal(np.concatenate(shards), trace)

    def test_round_robin_interleave(self):
        shards = [np.array([0, 1]), np.array([10, 11]), np.array([20, 21])]
        merged = interleave_shards(shards, mode="round_robin")
        assert list(merged) == [0, 10, 20, 1, 11, 21]

    def test_round_robin_uneven_shards(self):
        shards = [np.array([0, 1, 2]), np.array([10])]
        merged = interleave_shards(shards, mode="round_robin")
        assert sorted(merged) == [0, 1, 2, 10]
        assert len(merged) == 4

    def test_random_interleave_preserves_multiset(self):
        trace = np.arange(100, dtype=np.int64)
        merged = interleave_shards(shard_trace(trace, 7), mode="random", seed=5)
        assert sorted(merged) == list(range(100))

    def test_random_interleave_perturbs_order(self):
        trace = np.arange(1000, dtype=np.int64)
        merged = concurrent_view(trace, 8, mode="random", seed=5)
        assert not np.array_equal(merged, trace)

    def test_single_client_passthrough(self):
        trace = np.arange(10, dtype=np.int64)
        assert np.array_equal(concurrent_view(trace, 1), trace)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            interleave_shards([np.array([1])], mode="zigzag")

    def test_empty_input(self):
        assert len(interleave_shards([])) == 0

    def test_shard_validation(self):
        with pytest.raises(ValueError):
            shard_trace(np.array([1]), 0)
