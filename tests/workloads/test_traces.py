"""Tests for the synthetic trace families and corpora."""

import numpy as np
import pytest

from repro.cachesim import SampledAdaptiveCache
from repro.workloads import (
    WORKLOAD_CATALOG,
    corpus,
    footprint,
    looping_trace,
    phase_switch_trace,
    scan_polluted_trace,
    shifting_hotspot_trace,
    webmail_like_trace,
    zipfian_trace,
)

GENERATORS = {
    "zipf": lambda n, k, s: zipfian_trace(n, k, seed=s),
    "drift": lambda n, k, s: shifting_hotspot_trace(n, k, seed=s),
    "scan": lambda n, k, s: scan_polluted_trace(n, k, seed=s),
    "phase": lambda n, k, s: phase_switch_trace(n, k, seed=s),
    "webmail": lambda n, k, s: webmail_like_trace(n, k, seed=s),
}


class TestGeneratorContracts:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_length_and_range(self, name):
        trace = GENERATORS[name](5000, 512, 3)
        assert len(trace) == 5000
        assert trace.min() >= 0 and trace.max() < 512
        assert trace.dtype == np.int64

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_deterministic(self, name):
        a = GENERATORS[name](2000, 256, 7)
        b = GENERATORS[name](2000, 256, 7)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_seed_changes_trace(self, name):
        a = GENERATORS[name](2000, 256, 1)
        b = GENERATORS[name](2000, 256, 2)
        assert not np.array_equal(a, b)

    def test_looping_trace_cycles(self):
        trace = looping_trace(10, loop_len=4)
        assert list(trace) == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_footprint(self):
        assert footprint([1, 1, 2, 3]) == 3
        assert footprint(looping_trace(100, loop_len=7)) == 7


class TestAffinities:
    """The families must carry the LRU/LFU affinities the paper's
    experiments rely on."""

    @staticmethod
    def _hit(policies, trace, capacity):
        cache = SampledAdaptiveCache(capacity, policies=policies, seed=2)
        for key in trace:
            cache.access(int(key))
        return cache.hit_rate()

    def test_drift_is_lru_friendly(self):
        trace = shifting_hotspot_trace(40_000, 2048, seed=5)
        assert self._hit(("lru",), trace, 200) > self._hit(("lfu",), trace, 200) + 0.03

    def test_zipf_is_lfu_friendly(self):
        trace = zipfian_trace(40_000, 2048, theta=1.0, seed=5)
        assert self._hit(("lfu",), trace, 200) > self._hit(("lru",), trace, 200) + 0.02

    def test_scan_is_lfu_friendly(self):
        trace = scan_polluted_trace(40_000, 2048, seed=5)
        assert self._hit(("lfu",), trace, 200) > self._hit(("lru",), trace, 200) + 0.02

    def test_phase_switch_has_phases_with_opposite_affinity(self):
        n = 40_000
        trace = phase_switch_trace(n, 2048, phases=4, seed=5)
        quarter = n // 4
        lru_phase = trace[:quarter]
        lfu_phase = trace[quarter : 2 * quarter]
        assert self._hit(("lru",), lru_phase, 200) > self._hit(("lfu",), lru_phase, 200)
        assert self._hit(("lfu",), lfu_phase, 200) > self._hit(("lru",), lfu_phase, 200)


class TestCatalog:
    def test_table2_workloads_present(self):
        expected = {
            "webmail", "ibm", "cloudphysics",
            "twitter-transient", "twitter-storage", "twitter-compute",
        }
        assert set(WORKLOAD_CATALOG) == expected

    def test_catalog_types_match_table2(self):
        assert WORKLOAD_CATALOG["ibm"].workload_type == "Object Store"
        assert WORKLOAD_CATALOG["webmail"].workload_type == "Block IO"
        assert "key-value cache" in WORKLOAD_CATALOG["twitter-storage"].workload_type

    @pytest.mark.parametrize("name", sorted(WORKLOAD_CATALOG))
    def test_catalog_specs_generate(self, name):
        spec = WORKLOAD_CATALOG[name]
        trace = spec.trace(2000, seed=1)
        assert len(trace) == 2000
        assert trace.max() < spec.n_keys


class TestCorpus:
    def test_size_and_names_unique(self):
        specs = corpus(74, seed=0)
        assert len(specs) == 74
        assert len({s.name for s in specs}) == 74

    def test_covers_multiple_families(self):
        specs = corpus(20, seed=0)
        assert len({s.family for s in specs}) >= 4

    def test_deterministic(self):
        a = corpus(10, seed=3)
        b = corpus(10, seed=3)
        ta = a[4].trace(1000, seed=1)
        tb = b[4].trace(1000, seed=1)
        assert np.array_equal(ta, tb)

    def test_traces_generate_in_range(self):
        for spec in corpus(10, seed=2):
            trace = spec.trace(500, seed=0)
            assert trace.max() < spec.n_keys
