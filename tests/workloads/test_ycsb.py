"""Tests for YCSB workload generation."""

import pytest

from repro.workloads import YCSBConfig, YCSB_MIXES, make_ycsb


class TestMixes:
    @pytest.mark.parametrize(
        "workload,read_frac", [("A", 0.5), ("B", 0.95), ("C", 1.0)]
    )
    def test_read_fractions(self, workload, read_frac):
        wl = make_ycsb(workload, n_keys=1000, seed=2)
        requests = wl.requests(20_000)
        reads = sum(1 for op, _ in requests if op == "read")
        assert reads / len(requests) == pytest.approx(read_frac, abs=0.02)

    def test_workload_c_is_read_only(self):
        wl = make_ycsb("C", n_keys=100, seed=1)
        assert all(op == "read" for op, _ in wl.requests(5000))

    def test_workload_a_has_updates_not_inserts(self):
        wl = make_ycsb("A", n_keys=100, seed=1)
        ops = {op for op, _ in wl.requests(5000)}
        assert ops == {"read", "update"}

    def test_workload_d_inserts_new_keys(self):
        wl = make_ycsb("D", n_keys=1000, seed=1)
        requests = wl.requests(10_000)
        inserts = [key for op, key in requests if op == "insert"]
        assert len(inserts) == pytest.approx(500, abs=100)
        # inserts extend the key space monotonically
        assert inserts == sorted(inserts)
        assert inserts[0] == 1000

    def test_mix_table_complete(self):
        assert set(YCSB_MIXES) == {"A", "B", "C", "D"}
        for read, update, insert in YCSB_MIXES.values():
            assert read + update + insert == pytest.approx(1.0)


class TestConfig:
    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            YCSBConfig(workload="Z")

    def test_lowercase_accepted(self):
        assert YCSBConfig(workload="c").workload == "C"

    def test_keys_in_range(self):
        wl = make_ycsb("B", n_keys=500, seed=3)
        assert all(0 <= key < 500 for _, key in wl.requests(5000))

    def test_deterministic(self):
        a = make_ycsb("A", n_keys=100, seed=9).requests(100)
        b = make_ycsb("A", n_keys=100, seed=9).requests(100)
        assert a == b

    def test_load_keys(self):
        wl = make_ycsb("C", n_keys=100, seed=1)
        assert list(wl.load_keys()) == list(range(100))

    def test_request_stream_chunks(self):
        wl = make_ycsb("C", n_keys=100, seed=1)
        stream = list(wl.request_stream(1000, chunk=64))
        assert len(stream) == 1000
