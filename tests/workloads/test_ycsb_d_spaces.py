"""YCSB-D multi-client insert semantics: disjoint per-client key ranges."""

from repro.workloads import YCSBConfig, YCSBWorkload


def _insert_keys(client_id, count=5000, n_keys=1000):
    wl = YCSBWorkload(
        YCSBConfig(workload="D", n_keys=n_keys, seed=1, client_id=client_id)
    )
    return [key for op, key in wl.requests(count) if op == "insert"]


def test_clients_insert_into_disjoint_ranges():
    a = set(_insert_keys(client_id=0))
    b = set(_insert_keys(client_id=1))
    assert a and b
    assert not (a & b)


def test_client_zero_inserts_continue_base_range():
    inserts = _insert_keys(client_id=0, n_keys=1000)
    assert inserts[0] == 1000
    assert inserts == sorted(inserts)


def test_reads_cover_base_and_own_inserts():
    wl = YCSBWorkload(
        YCSBConfig(workload="D", n_keys=1000, seed=2, client_id=3)
    )
    requests = wl.requests(20_000)
    own_base = 1000 + 3 * (1 << 20)
    reads = [key for op, key in requests if op == "read"]
    assert any(key < 1000 for key in reads)  # base records
    assert any(key >= own_base for key in reads)  # own fresh inserts
    # never reads another client's insert range
    assert all(key < 1000 or key >= own_base for key in reads)
