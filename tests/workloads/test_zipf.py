"""Tests for key-distribution generators."""

import numpy as np
import pytest

from repro.workloads import LatestGenerator, UniformGenerator, ZipfianGenerator


class TestZipfian:
    def test_keys_in_range(self):
        gen = ZipfianGenerator(1000, seed=1)
        keys = gen.sample(5000)
        assert keys.min() >= 0 and keys.max() < 1000

    def test_deterministic_by_seed(self):
        a = ZipfianGenerator(1000, seed=7).sample(100)
        b = ZipfianGenerator(1000, seed=7).sample(100)
        assert np.array_equal(a, b)

    def test_skew_increases_with_theta(self):
        def top_share(theta):
            gen = ZipfianGenerator(1000, theta=theta, seed=3, scramble=False)
            keys = gen.sample(20_000)
            _, counts = np.unique(keys, return_counts=True)
            return counts.max() / len(keys)

        assert top_share(1.2) > top_share(0.6) > top_share(0.0)

    def test_unscrambled_rank_zero_most_popular(self):
        gen = ZipfianGenerator(100, theta=0.99, seed=2, scramble=False)
        keys = gen.sample(20_000)
        values, counts = np.unique(keys, return_counts=True)
        assert values[np.argmax(counts)] == 0

    def test_scramble_spreads_popularity(self):
        gen = ZipfianGenerator(1000, theta=0.99, seed=2, scramble=True)
        keys = gen.sample(20_000)
        values, counts = np.unique(keys, return_counts=True)
        # most popular key need not be 0 once scrambled
        assert counts.max() / 20_000 > 0.01

    def test_theta_zero_is_uniform(self):
        gen = ZipfianGenerator(10, theta=0.0, seed=4)
        keys = gen.sample(50_000)
        _, counts = np.unique(keys, return_counts=True)
        assert counts.min() > 0.08 * 50_000

    def test_sample_one(self):
        assert 0 <= ZipfianGenerator(10, seed=1).sample_one() < 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=-1)


class TestUniform:
    def test_range_and_determinism(self):
        gen = UniformGenerator(50, seed=3)
        keys = gen.sample(1000)
        assert keys.min() >= 0 and keys.max() < 50
        assert np.array_equal(keys, UniformGenerator(50, seed=3).sample(1000))


class TestLatest:
    def test_skews_toward_newest(self):
        gen = LatestGenerator(10_000, seed=5)
        keys = gen.sample(10_000, newest=9_999)
        assert np.median(keys) > 8_000

    def test_in_range(self):
        gen = LatestGenerator(100, seed=5)
        keys = gen.sample(1000, newest=50)
        assert keys.min() >= 0 and keys.max() <= 50
